// Package simlat simulates the execution-time behaviour of the paper's
// 2002 testbed (DB2 UDB v7.1 + MQ Series Workflow v3.2.2 + Java RMI).
//
// The paper's performance claims are about ratios and orderings, not
// absolute numbers: the WfMS architecture is about 3x slower than the
// enhanced SQL UDTF architecture, parallel activities pay off only under
// the WfMS, removing the controller shrinks UDTF time by 25% but WfMS time
// by only 8%, and per-step time portions follow Fig. 6. simlat provides
//
//   - Task: a cost meter threaded through both integration stacks. In
//     virtual mode it is a deterministic clock supporting fork/join so
//     parallel workflow branches overlap (elapsed = max of branches); in
//     wall mode it sleeps a scaled-down real duration so testing.B
//     measurements reproduce the same shape.
//   - Recorder: attributes spent time to named steps, regenerating the
//     Fig. 6 breakdown tables.
//   - Profile: the calibrated step costs, expressed in "paper
//     milliseconds" (PaperMS).
package simlat

import (
	"sort"
	"sync"
	"time"
)

// PaperMS is one millisecond of 2002-testbed time. All Profile constants
// are multiples of it; wall-mode tasks scale it down before sleeping.
const PaperMS = time.Millisecond

// Mode selects how a Task consumes simulated work.
type Mode int

// Task modes.
const (
	// ModeVirtual accounts time on a deterministic virtual clock and
	// never sleeps. Fork/Join implement parallel-branch semantics.
	ModeVirtual Mode = iota
	// ModeWall sleeps scale*d real time for every d of simulated work;
	// parallelism arises from real goroutine concurrency.
	ModeWall
	// ModeFree ignores all Spend calls; used when the SQL engine is
	// exercised outside a measured experiment.
	ModeFree
)

// SpanSink observes the work charged to a task. The obs package's spans
// implement it: the task carries the current span, forks inherit it, and
// every labelled Spend is attributed to it — so a span tree accounts for
// exactly the same charges as an attached Recorder.
type SpanSink interface {
	AddStep(label string, d time.Duration)
}

// Task is the cost meter for one in-flight request (one federated function
// call, one query). It is safe for concurrent use by forked branches.
type Task struct {
	mode  Mode
	scale float64 // wall mode: real seconds per paper second

	mu    sync.Mutex
	now   time.Duration // virtual elapsed on this branch
	spent time.Duration // total work charged to this branch (all modes)
	start time.Time     // wall mode origin
	label string        // current step label; Spend attributes to it

	rec  *Recorder // optional shared step recorder
	sink SpanSink  // optional current span (per branch, inherited by forks)
}

// NewVirtualTask returns a task on a fresh virtual clock.
func NewVirtualTask() *Task { return &Task{mode: ModeVirtual} }

// NewWallTask returns a task that really sleeps scale*d for each Spend(d).
// A scale of 0.001 turns one paper-millisecond into one microsecond.
func NewWallTask(scale float64) *Task {
	return &Task{mode: ModeWall, scale: scale, start: time.Now()}
}

// Free returns a task that ignores all accounting.
func Free() *Task { return &Task{mode: ModeFree} }

// Mode returns the task's accounting mode.
func (t *Task) Mode() Mode {
	if t == nil {
		return ModeFree
	}
	return t.mode
}

// SetRecorder attaches a step recorder shared by this task and all later
// forks of it.
func (t *Task) SetRecorder(r *Recorder) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rec = r
	t.mu.Unlock()
}

// Recorder returns the attached recorder, or nil.
func (t *Task) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rec
}

// SetSpanSink installs the branch's current span sink and returns the
// previous one so callers can restore it when a span ends. Unlike the
// recorder, the sink is branch-local: a fork starts with the sink current
// at fork time, and replacing it later on the branch does not affect the
// parent.
func (t *Task) SetSpanSink(s SpanSink) (prev SpanSink) {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	prev = t.sink
	t.sink = s
	t.mu.Unlock()
	return prev
}

// SpanSink returns the branch's current span sink, or nil.
func (t *Task) SpanSink() SpanSink {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sink
}

// SetLabel sets the current step label: subsequent Spend calls — including
// those made by callees further down the stack — are attributed to it in
// the recorder. It returns the previous label so callers can restore it.
func (t *Task) SetLabel(name string) (prev string) {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	prev = t.label
	t.label = name
	t.mu.Unlock()
	return prev
}

// Spend charges d of simulated work to the task, attributing it to the
// current step label when one is set.
func (t *Task) Spend(d time.Duration) {
	if t == nil || d <= 0 || t.mode == ModeFree {
		return
	}
	t.mu.Lock()
	t.now += d
	t.spent += d
	rec, sink, label := t.rec, t.sink, t.label
	t.mu.Unlock()
	if label != "" {
		if rec != nil {
			rec.Add(label, d)
		}
		if sink != nil {
			sink.AddStep(label, d)
		}
	}
	if t.mode == ModeWall {
		wallWait(time.Duration(float64(d) * t.scale))
	}
}

// spinThreshold is the boundary below which wall-mode waits spin instead
// of sleeping: the OS timer granularity (~0.5 ms per sleep) would
// otherwise swamp sub-millisecond step costs and distort every measured
// ratio.
const spinThreshold = 500 * time.Microsecond

func wallWait(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= spinThreshold {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// Step charges d of simulated work and attributes it to the named step,
// overriding the current label for this one charge.
func (t *Task) Step(name string, d time.Duration) {
	if t == nil || t.mode == ModeFree {
		return
	}
	prev := t.SetLabel(name)
	t.Spend(d)
	t.SetLabel(prev)
}

// Elapsed returns the branch-local elapsed time: the virtual clock reading
// in virtual mode, the real time since task creation (rescaled back to
// paper time) in wall mode, and the total spent in free mode.
func (t *Task) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	switch t.mode {
	case ModeWall:
		if t.scale <= 0 {
			return time.Since(t.start)
		}
		return time.Duration(float64(time.Since(t.start)) / t.scale)
	default:
		return t.now
	}
}

// Spent returns the total simulated work charged to this branch.
func (t *Task) Spent() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spent
}

// Fork starts a parallel branch whose virtual clock begins at the parent's
// current reading. Branches share the recorder. The caller must later pass
// the branch to Join on the parent.
func (t *Task) Fork() *Task {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return &Task{mode: t.mode, scale: t.scale, now: t.now, start: t.start, label: t.label, rec: t.rec, sink: t.sink}
}

// ForkN starts n parallel branches at once; the caller must later pass all
// of them to Join on the parent. On a nil task it returns n nil branches,
// which every Task method tolerates.
func (t *Task) ForkN(n int) []*Task {
	branches := make([]*Task, n)
	for i := range branches {
		branches[i] = t.Fork()
	}
	return branches
}

// Join merges completed parallel branches back into the parent: the parent
// clock advances to the latest branch reading (virtual mode) and the
// branches' spent work is added to the parent's total.
func (t *Task) Join(branches ...*Task) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, b := range branches {
		if b == nil {
			continue
		}
		b.mu.Lock()
		if b.now > t.now {
			t.now = b.now
		}
		t.spent += b.spent
		b.mu.Unlock()
	}
}

// AdvanceTo moves the virtual clock forward to at least d without charging
// work; the workflow navigator uses it to start an activity at the latest
// end time of its predecessors.
func (t *Task) AdvanceTo(d time.Duration) {
	if t == nil || t.mode != ModeVirtual {
		return
	}
	t.mu.Lock()
	if d > t.now {
		t.now = d
	}
	t.mu.Unlock()
}

// Step is one named entry of a recorded breakdown.
type Step struct {
	Name  string
	Total time.Duration
}

// Recorder accumulates time portions by step name, preserving first-seen
// order. It is safe for concurrent use.
type Recorder struct {
	mu    sync.Mutex
	order []string
	total map[string]time.Duration
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{total: make(map[string]time.Duration)}
}

// Add attributes d to the named step.
func (r *Recorder) Add(name string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.total[name]; !ok {
		r.order = append(r.order, name)
	}
	r.total[name] += d
}

// Steps returns the recorded steps in first-seen order.
func (r *Recorder) Steps() []Step {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Step, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, Step{Name: n, Total: r.total[n]})
	}
	return out
}

// Total returns the sum over all steps.
func (r *Recorder) Total() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum time.Duration
	for _, d := range r.total {
		sum += d
	}
	return sum
}

// Percentages returns each step's share of the total, in first-seen order,
// as (name, percent) pairs. Shares are rounded to the nearest integer.
func (r *Recorder) Percentages() []struct {
	Name    string
	Percent int
} {
	total := r.Total()
	steps := r.Steps()
	out := make([]struct {
		Name    string
		Percent int
	}, len(steps))
	for i, s := range steps {
		p := 0
		if total > 0 {
			p = int(float64(s.Total)/float64(total)*100 + 0.5)
		}
		out[i] = struct {
			Name    string
			Percent int
		}{s.Name, p}
	}
	return out
}

// SortedSteps returns the steps ordered by descending total.
func (r *Recorder) SortedSteps() []Step {
	steps := r.Steps()
	sort.Slice(steps, func(i, j int) bool { return steps[i].Total > steps[j].Total })
	return steps
}
