package simlat

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualSpendAndElapsed(t *testing.T) {
	task := NewVirtualTask()
	task.Spend(10 * PaperMS)
	task.Spend(5 * PaperMS)
	if got := task.Elapsed(); got != 15*PaperMS {
		t.Errorf("Elapsed = %v, want 15ms", got)
	}
	if got := task.Spent(); got != 15*PaperMS {
		t.Errorf("Spent = %v, want 15ms", got)
	}
	task.Spend(-3 * PaperMS) // negative spends are ignored
	task.Spend(0)
	if got := task.Elapsed(); got != 15*PaperMS {
		t.Errorf("Elapsed after no-op spends = %v", got)
	}
}

func TestForkJoinParallelSemantics(t *testing.T) {
	task := NewVirtualTask()
	task.Spend(10 * PaperMS)
	b1 := task.Fork()
	b2 := task.Fork()
	b1.Spend(100 * PaperMS)
	b2.Spend(40 * PaperMS)
	task.Join(b1, b2)
	// Parallel elapsed is the max of the branches, not the sum.
	if got := task.Elapsed(); got != 110*PaperMS {
		t.Errorf("Elapsed = %v, want 110ms", got)
	}
	// Spent work is the sum of all branches.
	if got := task.Spent(); got != 150*PaperMS {
		t.Errorf("Spent = %v, want 150ms", got)
	}
}

func TestSequentialVsParallelOrdering(t *testing.T) {
	seq := NewVirtualTask()
	seq.Spend(60 * PaperMS)
	seq.Spend(60 * PaperMS)

	par := NewVirtualTask()
	a, b := par.Fork(), par.Fork()
	a.Spend(60 * PaperMS)
	b.Spend(60 * PaperMS)
	par.Join(a, b)

	if par.Elapsed() >= seq.Elapsed() {
		t.Errorf("parallel (%v) must beat sequential (%v)", par.Elapsed(), seq.Elapsed())
	}
}

func TestAdvanceTo(t *testing.T) {
	task := NewVirtualTask()
	task.Spend(5 * PaperMS)
	task.AdvanceTo(20 * PaperMS)
	if got := task.Elapsed(); got != 20*PaperMS {
		t.Errorf("Elapsed after AdvanceTo = %v", got)
	}
	task.AdvanceTo(10 * PaperMS) // never moves backwards
	if got := task.Elapsed(); got != 20*PaperMS {
		t.Errorf("AdvanceTo moved the clock backwards: %v", got)
	}
	// AdvanceTo does not charge work.
	if got := task.Spent(); got != 5*PaperMS {
		t.Errorf("Spent = %v, want 5ms", got)
	}
}

func TestFreeTaskIgnoresEverything(t *testing.T) {
	task := Free()
	task.Spend(time.Hour)
	task.Step("x", time.Hour)
	if task.Elapsed() != 0 || task.Spent() != 0 {
		t.Error("free task must not account")
	}
	var nilTask *Task
	nilTask.Spend(time.Hour) // must not panic
	nilTask.Step("x", 1)
	nilTask.Join(task)
	if nilTask.Elapsed() != 0 || nilTask.Spent() != 0 || nilTask.Fork() != nil {
		t.Error("nil task must be inert")
	}
	if nilTask.Recorder() != nil {
		t.Error("nil task recorder must be nil")
	}
	if nilTask.Mode() != ModeFree {
		t.Error("nil task mode must be free")
	}
}

func TestWallTaskSleeps(t *testing.T) {
	task := NewWallTask(0.0001) // 1 paper-ms -> 100ns
	start := time.Now()
	task.Spend(50 * PaperMS)
	real := time.Since(start)
	if real > 100*time.Millisecond {
		t.Errorf("wall task slept too long: %v", real)
	}
	if task.Elapsed() < 50*PaperMS/10 {
		t.Errorf("rescaled wall elapsed suspiciously small: %v", task.Elapsed())
	}
}

func TestRecorderStepsAndPercentages(t *testing.T) {
	rec := NewRecorder()
	task := NewVirtualTask()
	task.SetRecorder(rec)
	if task.Recorder() != rec {
		t.Fatal("recorder not attached")
	}
	task.Step("a", 30*PaperMS)
	task.Step("b", 70*PaperMS)
	task.Step("a", 20*PaperMS)
	steps := rec.Steps()
	if len(steps) != 2 || steps[0].Name != "a" || steps[0].Total != 50*PaperMS {
		t.Errorf("Steps = %v", steps)
	}
	if rec.Total() != 120*PaperMS {
		t.Errorf("Total = %v", rec.Total())
	}
	pcts := rec.Percentages()
	if pcts[0].Percent != 42 || pcts[1].Percent != 58 {
		t.Errorf("Percentages = %v", pcts)
	}
	sorted := rec.SortedSteps()
	if sorted[0].Name != "b" {
		t.Errorf("SortedSteps = %v", sorted)
	}
}

func TestRecorderSharedAcrossForks(t *testing.T) {
	rec := NewRecorder()
	task := NewVirtualTask()
	task.SetRecorder(rec)
	var wg sync.WaitGroup
	branches := make([]*Task, 8)
	for i := range branches {
		b := task.Fork()
		branches[i] = b
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Step("act", 10*PaperMS)
		}()
	}
	wg.Wait()
	task.Join(branches...)
	if rec.Total() != 80*PaperMS {
		t.Errorf("shared recorder total = %v", rec.Total())
	}
	if task.Elapsed() != 10*PaperMS {
		t.Errorf("parallel elapsed = %v, want 10ms", task.Elapsed())
	}
}

func TestLabelledSpendAttribution(t *testing.T) {
	rec := NewRecorder()
	task := NewVirtualTask()
	task.SetRecorder(rec)
	prev := task.SetLabel("Process activities")
	if prev != "" {
		t.Errorf("previous label = %q", prev)
	}
	task.Spend(10 * PaperMS) // attributed via label
	task.Step("RMI call", 3*PaperMS)
	task.Spend(5 * PaperMS) // label restored after Step
	task.SetLabel("")
	task.Spend(2 * PaperMS) // unlabelled: charged but not attributed
	steps := rec.Steps()
	if len(steps) != 2 || steps[0].Total != 15*PaperMS || steps[1].Total != 3*PaperMS {
		t.Errorf("steps = %v", steps)
	}
	if task.Spent() != 20*PaperMS {
		t.Errorf("spent = %v", task.Spent())
	}
	// Forks inherit the current label.
	task.SetLabel("act")
	b := task.Fork()
	b.Spend(PaperMS)
	if rec.Steps()[2].Name != "act" {
		t.Errorf("fork label not inherited: %v", rec.Steps())
	}
}

func TestEmptyRecorderPercentages(t *testing.T) {
	rec := NewRecorder()
	if got := rec.Percentages(); len(got) != 0 {
		t.Errorf("Percentages on empty recorder = %v", got)
	}
	rec.Add("z", 0)
	pcts := rec.Percentages()
	if len(pcts) != 1 || pcts[0].Percent != 0 {
		t.Errorf("zero-total percentages = %v", pcts)
	}
}

func TestDefaultProfileCalibration(t *testing.T) {
	p := DefaultProfile()
	// Recompute the documented totals for GetNoSuppComp (3 activities).
	wf := p.UDTFStart + p.UDTFProcess + p.RMICall + p.ControllerInvokeWf + p.WfStart +
		3*(p.ActivityJVMBoot+p.ContainerHandling+2*PaperMS) +
		3*p.WfNavigate + p.RMIReturn + p.UDTFFinish
	ud := p.IUDTFStart + 3*(p.AUDTFPrepare+p.RMICall+p.ControllerDispatch+2*PaperMS+p.AUDTFFinish+p.RMIReturn) + p.IUDTFFinish
	ratio := float64(wf) / float64(ud)
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("calibration broken: WfMS/UDTF ratio = %.2f (wf=%v udtf=%v)", ratio, wf, ud)
	}
	// Controller-attributable shares: ~8% (WfMS) and ~25% (UDTF).
	wfCtl := p.RMICall + p.RMIReturn + p.ControllerInvokeWf
	udCtl := 3 * (p.RMICall + p.RMIReturn + p.ControllerDispatch)
	if s := float64(wfCtl) / float64(wf); s < 0.06 || s > 0.10 {
		t.Errorf("WfMS controller share = %.3f, want ~0.08", s)
	}
	if s := float64(udCtl) / float64(ud); s < 0.22 || s > 0.28 {
		t.Errorf("UDTF controller share = %.3f, want ~0.25", s)
	}
}

// Property: for any split of work into two parallel branches, elapsed time
// equals the max branch and spent equals the sum.
func TestForkJoinProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		task := NewVirtualTask()
		pre := time.Duration(r.Intn(50)) * PaperMS
		task.Spend(pre)
		n := 1 + r.Intn(5)
		branches := make([]*Task, n)
		var maxd, sum time.Duration
		for i := range branches {
			branches[i] = task.Fork()
			d := time.Duration(r.Intn(100)) * PaperMS
			branches[i].Spend(d)
			if d > maxd {
				maxd = d
			}
			sum += d
		}
		task.Join(branches...)
		return task.Elapsed() == pre+maxd && task.Spent() == pre+sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Recorder and span sink must be safe under concurrently running forked
// branches (ParallelApply workers all feed the same Recorder). Run under
// -race.
func TestRecorderConcurrentForkedBranches(t *testing.T) {
	task := NewVirtualTask()
	rec := NewRecorder()
	task.SetRecorder(rec)
	sink := &countingSink{}
	task.SetSpanSink(sink)

	const workers, steps = 8, 50
	branches := task.ForkN(workers)
	var wg sync.WaitGroup
	for w, b := range branches {
		wg.Add(1)
		go func(w int, b *Task) {
			defer wg.Done()
			for i := 0; i < steps; i++ {
				b.Step("work", PaperMS)
				if i%10 == 0 {
					b.SetLabel("relabel")
					b.Spend(PaperMS)
					b.SetLabel("")
				}
			}
		}(w, b)
	}
	wg.Wait()
	task.Join(branches...)

	want := time.Duration(workers*steps) * PaperMS
	var got time.Duration
	for _, st := range rec.Steps() {
		got += st.Total
	}
	// The relabelled spends add workers*5 extra paper ms.
	want += time.Duration(workers*5) * PaperMS
	if got != want {
		t.Errorf("recorder total = %v, want %v", got, want)
	}
	if sink.total() != want {
		t.Errorf("sink total = %v, want %v", sink.total(), want)
	}
	// Branches inherited the sink snapshot; the parent still has it.
	if task.SpanSink() != SpanSink(sink) {
		t.Error("parent sink lost after join")
	}
}

// countingSink is a minimal SpanSink for concurrency tests.
type countingSink struct {
	mu  sync.Mutex
	sum time.Duration
}

func (c *countingSink) AddStep(label string, d time.Duration) {
	c.mu.Lock()
	c.sum += d
	c.mu.Unlock()
}

func (c *countingSink) total() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sum
}
