package benchharn

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"fedwf/internal/appsys"
	"fedwf/internal/fedfunc"
	"fedwf/internal/resil"
	"fedwf/internal/simlat"
	"fedwf/internal/types"
)

// E12 — fault tolerance under deterministic fault injection (extension).
//
// The experiment sweeps transient-error rates over the federated stack and
// compares an unprotected baseline against the protected configuration
// (retry with backoff + per-appsys circuit breaker), then demonstrates the
// two non-statistical guarantees: a hung application system resolves to
// ErrTimeout within the statement deadline on the virtual clock, and an
// open breaker sheds calls without invoking the faulty system (degrading
// to a flagged partial result on optional branches).

// faultSystems lists every application system of the scenario; the
// injector plans faults on all of them so the workload cannot dodge the
// fault mix by routing around one system.
var faultSystems = []string{appsys.StockKeeping, appsys.ProductData, appsys.Purchasing}

// FaultSweepRow is one (error rate, function) cell of the E12 sweep.
type FaultSweepRow struct {
	ErrorRate float64
	Function  string
	Calls     int
	// UnprotectedOK / ProtectedOK count statements that succeeded without /
	// with the resilience layer.
	UnprotectedOK int
	ProtectedOK   int
	// Retries is the number of retry attempts the protected stack spent.
	Retries int
}

// UnprotectedRate returns the baseline success fraction.
func (r FaultSweepRow) UnprotectedRate() float64 { return float64(r.UnprotectedOK) / float64(r.Calls) }

// ProtectedRate returns the protected success fraction.
func (r FaultSweepRow) ProtectedRate() float64 { return float64(r.ProtectedOK) / float64(r.Calls) }

// FaultReport is the full E12 result.
type FaultReport struct {
	Seed uint64
	Rows []FaultSweepRow

	// Hang demonstration: a 100%-hang system under a statement deadline.
	HangIsTimeout bool          // the error matches resil.ErrTimeout
	HangElapsed   time.Duration // virtual elapsed time when the statement gave up
	HangLimit     time.Duration // the configured statement deadline

	// Breaker demonstration: a 100%-error system behind a breaker.
	BreakerTripped  bool // the breaker opened
	ShedIsOpenErr   bool // the shed call's error matches resil.ErrCircuitOpen
	ShedWithoutCall bool // the shed call never reached the injector
	// Partial-result demonstration: the same open breaker under an
	// optional (LEFT lateral) branch with partial results enabled.
	PartialFlagged  bool
	PartialWarnings []string
}

// faultStack builds a WfMS-architecture stack whose application systems
// inject the given plan on every system, optionally guarded by the
// protected retry/breaker configuration.
func faultStack(seed uint64, plan resil.FaultPlan, protected bool, extra func(*fedfunc.Options)) (*fedfunc.Stack, error) {
	inj := resil.NewInjector(seed)
	for _, sys := range faultSystems {
		inj.Plan(sys, plan)
	}
	opts := fedfunc.Options{Faults: inj}
	if protected {
		// The sweep isolates the retry mechanism; the breaker is
		// demonstrated separately (at a 20% ambient error rate a
		// consecutive-failure breaker would eventually trip mid-sweep and
		// shed the remainder, conflating the two mechanisms).
		opts.Retry = resil.DefaultRetryPolicy()
		// Four attempts drive the per-call residual failure at a 20%
		// injected rate to 0.2^4 = 0.16%, keeping even the multi-call
		// linear function above 99% statement success.
		opts.Retry.MaxAttempts = 4
	}
	if extra != nil {
		extra(&opts)
	}
	return fedfunc.NewStack(fedfunc.ArchWfMS, opts)
}

// Faults runs the E12 sweep with the given deterministic seed: rates 5%,
// 10%, and 20% over the trivial (one call per statement) and linear
// (several calls per statement) federated functions, 200 statements each,
// then the hang and breaker demonstrations.
func (h *Harness) Faults(ctx context.Context, seed uint64) (*FaultReport, error) {
	report := &FaultReport{Seed: seed}
	const statements = 200
	specs := map[string]*fedfunc.Spec{}
	for _, s := range fedfunc.Specs() {
		specs[s.Name] = s
	}
	for _, rate := range []float64{0.05, 0.10, 0.20} {
		for _, fn := range []string{"GibKompNr", "GetSuppQual"} {
			spec, ok := specs[fn]
			if !ok {
				return nil, fmt.Errorf("benchharn: no spec %s", fn)
			}
			plan := resil.FaultPlan{ErrorRate: rate}
			unprot, err := faultStack(seed, plan, false, nil)
			if err != nil {
				return nil, err
			}
			prot, err := faultStack(seed, plan, true, nil)
			if err != nil {
				return nil, err
			}
			row := FaultSweepRow{ErrorRate: rate, Function: fn, Calls: statements}
			for i := 0; i < statements; i++ {
				sample := i % len(spec.SampleArgs)
				if _, err := unprot.CallContext(ctx, simlat.NewVirtualTask(), fn, spec.SampleArgs[sample]); err == nil {
					row.UnprotectedOK++
				}
				if _, err := prot.CallContext(ctx, simlat.NewVirtualTask(), fn, spec.SampleArgs[sample]); err == nil {
					row.ProtectedOK++
				}
			}
			row.Retries = prot.Guard().Retries()
			report.Rows = append(report.Rows, row)
		}
	}

	if err := h.faultHangDemo(ctx, seed, report); err != nil {
		return nil, err
	}
	if err := h.faultBreakerDemo(ctx, seed, report); err != nil {
		return nil, err
	}
	return report, nil
}

// faultHangDemo drives one statement into a system that always hangs and
// checks it resolves to ErrTimeout at the statement deadline (virtual
// time — the test itself never blocks).
func (h *Harness) faultHangDemo(ctx context.Context, seed uint64, report *FaultReport) error {
	const limit = 500 * simlat.PaperMS
	stack, err := faultStack(seed, resil.FaultPlan{HangRate: 1}, true, func(o *fedfunc.Options) {
		o.StmtTimeout = limit
	})
	if err != nil {
		return err
	}
	task := simlat.NewVirtualTask()
	_, callErr := stack.CallContext(ctx, task, "GibKompNr",
		[]types.Value{types.NewString("washer")})
	report.HangIsTimeout = errors.Is(callErr, resil.ErrTimeout)
	report.HangElapsed = task.Elapsed()
	report.HangLimit = limit
	return nil
}

// faultBreakerDemo trips a breaker on an always-failing system, verifies
// the next call is shed unexecuted with ErrCircuitOpen, and shows the
// partial-result degradation of an optional branch over the open circuit.
func (h *Harness) faultBreakerDemo(ctx context.Context, seed uint64, report *FaultReport) error {
	inj := resil.NewInjector(seed)
	inj.Plan(appsys.ProductData, resil.FaultPlan{ErrorRate: 1})
	stack, err := fedfunc.NewStack(fedfunc.ArchWfMS, fedfunc.Options{
		Faults:         inj,
		Breaker:        resil.BreakerPolicy{ConsecutiveFailures: 3, OpenFor: time.Minute},
		PartialResults: true,
	})
	if err != nil {
		return err
	}
	args := []types.Value{types.NewString("washer")}
	for i := 0; i < 3; i++ {
		if _, err := stack.CallContext(ctx, simlat.NewVirtualTask(), "GibKompNr", args); err == nil {
			return fmt.Errorf("benchharn: always-failing system succeeded")
		}
	}
	report.BreakerTripped = stack.Guard().Trips() > 0
	before := inj.Injected(appsys.ProductData)
	_, shedErr := stack.CallContext(ctx, simlat.NewVirtualTask(), "GibKompNr", args)
	report.ShedIsOpenErr = errors.Is(shedErr, resil.ErrCircuitOpen)
	report.ShedWithoutCall = inj.Injected(appsys.ProductData) == before

	// Optional branch: a LEFT lateral over the open circuit degrades to a
	// NULL-padded partial result instead of failing the statement.
	session := stack.Engine().NewSession()
	session.SetTask(simlat.NewVirtualTask())
	if _, err := session.ExecContext(ctx, "CREATE TABLE comps (Name VARCHAR(30))"); err != nil {
		return err
	}
	if _, err := session.ExecContext(ctx, "INSERT INTO comps VALUES ('washer'), ('bolt')"); err != nil {
		return err
	}
	res, err := session.ExecContext(ctx,
		"SELECT c.Name, k.KompNr FROM comps c LEFT JOIN TABLE (GibKompNr(c.Name)) AS k ON 1 = 1")
	if err != nil {
		return fmt.Errorf("benchharn: optional branch did not degrade: %w", err)
	}
	report.PartialFlagged = res.Partial
	report.PartialWarnings = res.Warnings
	return nil
}

// RenderFaults renders the E12 report as text tables.
func RenderFaults(r *FaultReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault sweep (seed %d, %d statements per cell; protected = retry with backoff, 4 attempts):\n\n", r.Seed, r.Rows[0].Calls)
	fmt.Fprintf(&b, "%-11s %-12s %12s %12s %8s\n", "error rate", "function", "unprotected", "protected", "retries")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%9.0f%%  %-12s %11.1f%% %11.1f%% %8d\n",
			row.ErrorRate*100, row.Function, row.UnprotectedRate()*100, row.ProtectedRate()*100, row.Retries)
	}
	b.WriteString("\nhang demonstration (HangRate=1, statement timeout 500 paper-ms):\n")
	fmt.Fprintf(&b, "  timeout error: %v; gave up at %.1f paper-ms (limit %.1f)\n",
		r.HangIsTimeout,
		float64(r.HangElapsed)/float64(simlat.PaperMS),
		float64(r.HangLimit)/float64(simlat.PaperMS))
	b.WriteString("\nbreaker demonstration (ErrorRate=1, trip after 3 consecutive failures):\n")
	fmt.Fprintf(&b, "  tripped: %v; shed with ErrCircuitOpen: %v; faulty system not called: %v\n",
		r.BreakerTripped, r.ShedIsOpenErr, r.ShedWithoutCall)
	fmt.Fprintf(&b, "  optional branch degraded to partial result: %v\n", r.PartialFlagged)
	for _, w := range r.PartialWarnings {
		fmt.Fprintf(&b, "    warning: %s\n", w)
	}
	return b.String()
}
