// E16 — the high-concurrency serving sweep (extension beyond the paper).
//
// The paper's evaluation runs one statement at a time; the serving layer's
// question is what happens when 100, 1 000, and 10 000 sessions arrive at
// once. Answering it with wall-clock load generation would make the repo's
// numbers machine-dependent, so E16 is a deterministic discrete-event
// simulation on the virtual clock: sessions stagger in over a ramp, each
// generates a fixed number of statements, a client-side pipeline window
// models the framed protocol (window 1 is the serialized legacy gob
// transport — a statement cannot be sent before its predecessor's
// response), and the server side runs the SAME admission decision the live
// server uses (rpc.AdmissionPolicy.Classify), so measured shed behaviour
// is the deployed shed behaviour. Per-statement service time is measured
// from a real architecture stack, not assumed.
package benchharn

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"fedwf/internal/fedfunc"
	"fedwf/internal/resil"
	"fedwf/internal/rpc"
	"fedwf/internal/simlat"
)

// ServingConfig parameterizes one deterministic serving simulation.
type ServingConfig struct {
	// Sessions is the number of concurrent client sessions.
	Sessions int
	// Requests is the number of statements each session issues.
	Requests int
	// Window is the client pipeline window: how many statements a session
	// may have in flight. 1 models the serialized gob transport, >1 the
	// framed multiplexed protocol.
	Window int
	// Service is the per-statement service time on the virtual clock.
	Service time.Duration
	// GenGap separates consecutive statement generations within a session.
	GenGap time.Duration
	// Ramp staggers session starts uniformly over this span.
	Ramp time.Duration
	// Policy is the server's admission policy; the simulation calls its
	// Classify exactly as the live server does.
	Policy rpc.AdmissionPolicy
}

// ServingResult is the outcome of one simulation run. Latencies are
// measured from statement generation to completion, so client-side
// head-of-line blocking under a small window is part of the number — as
// it is for a real caller.
type ServingResult struct {
	Cfg       ServingConfig
	Completed int
	Shed      int
	// Errs holds the error of every shed statement (always wrapping
	// resil.ErrAppSysUnavailable; kept so experiments can assert it).
	Errs []error
	// P50 and P99 are generation-to-completion latency percentiles over
	// the completed statements.
	P50, P99 time.Duration
	// Makespan is the virtual time from first generation to last event.
	Makespan time.Duration
	// Throughput is completed statements per virtual second.
	Throughput float64
}

// Event kinds of the simulation: a client generating a statement, and the
// server completing one.
const (
	evGen = iota
	evDone
)

// servEvent is one scheduled simulation event; seq breaks time ties
// deterministically in generation order.
type servEvent struct {
	at      time.Duration
	seq     int
	kind    int
	session int
	gen     time.Duration // evDone: the statement's generation time
}

type servHeap []servEvent

func (h servHeap) Len() int { return len(h) }
func (h servHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h servHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *servHeap) Push(x interface{}) { *h = append(*h, x.(servEvent)) }
func (h *servHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// servSession is one simulated client session.
type servSession struct {
	pending  []time.Duration // generated, unsent statements (their gen times)
	inFlight int
}

// queuedReq is one statement waiting in the server's admission queue.
type queuedReq struct {
	session int
	gen     time.Duration
}

// SimulateServing runs one deterministic serving simulation. The model:
// session i starts at Ramp*i/Sessions and generates its j-th statement
// GenGap apart; a statement is sent as soon as the session has a free
// window slot; the server classifies each arrival with Policy.Classify —
// run now (completing Service later), wait in the global FIFO, or shed
// with resil.ErrAppSysUnavailable. Identical inputs give identical
// outputs on every machine.
func SimulateServing(cfg ServingConfig) ServingResult {
	if cfg.Sessions <= 0 || cfg.Requests <= 0 {
		return ServingResult{Cfg: cfg}
	}
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	res := ServingResult{Cfg: cfg}
	sessions := make([]servSession, cfg.Sessions)
	var queue []queuedReq
	running := 0
	seq := 0
	events := &servHeap{}
	push := func(at time.Duration, kind, session int, gen time.Duration) {
		seq++
		heap.Push(events, servEvent{at: at, seq: seq, kind: kind, session: session, gen: gen})
	}
	for i := 0; i < cfg.Sessions; i++ {
		start := time.Duration(int64(cfg.Ramp) * int64(i) / int64(cfg.Sessions))
		for j := 0; j < cfg.Requests; j++ {
			push(start+time.Duration(j)*cfg.GenGap, evGen, i, 0)
		}
	}
	var latencies []time.Duration
	// arrive runs the server-side admission decision for one sent
	// statement; trySend drains a session's pending statements into its
	// free window slots. A shed frees the window slot immediately (the
	// client got a fast typed refusal), so the next pending statement may
	// follow — and may shed too, which is exactly the behaviour of a real
	// client hammering a saturated server.
	var trySend func(now time.Duration, s int)
	arrive := func(now time.Duration, s int, gen time.Duration) {
		switch cfg.Policy.Classify(running, len(queue)) {
		case rpc.AdmitRun:
			running++
			push(now+cfg.Service, evDone, s, gen)
		case rpc.AdmitQueue:
			queue = append(queue, queuedReq{session: s, gen: gen})
		case rpc.AdmitShed:
			res.Shed++
			res.Errs = append(res.Errs, fmt.Errorf("serving: statement shed (%d running, %d queued): %w",
				running, len(queue), resil.ErrAppSysUnavailable))
			sessions[s].inFlight--
			trySend(now, s)
		}
	}
	trySend = func(now time.Duration, s int) {
		sess := &sessions[s]
		for sess.inFlight < cfg.Window && len(sess.pending) > 0 {
			gen := sess.pending[0]
			sess.pending = sess.pending[1:]
			sess.inFlight++
			arrive(now, s, gen)
		}
	}
	for events.Len() > 0 {
		ev := heap.Pop(events).(servEvent)
		res.Makespan = ev.at
		switch ev.kind {
		case evGen:
			sessions[ev.session].pending = append(sessions[ev.session].pending, ev.at)
			trySend(ev.at, ev.session)
		case evDone:
			res.Completed++
			latencies = append(latencies, ev.at-ev.gen)
			sessions[ev.session].inFlight--
			trySend(ev.at, ev.session)
			running--
			if len(queue) > 0 {
				next := queue[0]
				queue = queue[1:]
				running++
				push(ev.at+cfg.Service, evDone, next.session, next.gen)
			}
		}
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		res.P50 = latencies[(len(latencies)-1)*50/100]
		res.P99 = latencies[(len(latencies)-1)*99/100]
	}
	if res.Makespan > 0 {
		res.Throughput = float64(res.Completed) / (float64(res.Makespan) / float64(time.Second))
	}
	return res
}

// ServingFunction is the statement whose hot cost calibrates the
// simulation's service time.
const ServingFunction = "GetSuppQual"

// ServingPolicy is the admission policy of the E16 sweep: 128 concurrent
// statements, a 512-deep queue behind them, no session cap.
func ServingPolicy() rpc.AdmissionPolicy {
	return rpc.AdmissionPolicy{MaxConcurrent: 128, QueueDepth: 512}
}

// ServingRow is one scale point of the E16 sweep.
type ServingRow struct {
	Sessions int
	ServingResult
}

// ServingReport is the full E16 output: the session-scale sweep under the
// pipelined window, plus a serialized-vs-pipelined pair at a light scale
// that isolates the protocol's head-of-line-blocking cost from admission
// effects.
type ServingReport struct {
	Service    time.Duration // measured hot cost of ServingFunction
	Rows       []ServingRow
	Serialized ServingResult // window 1 at the light scale
	Pipelined  ServingResult // window 4 at the light scale
}

// ServingSweep runs the E16 serving simulation: service time measured hot
// from the WfMS stack, 4 statements per session generated Service/2
// apart, sessions ramping in over one virtual second, and the admission
// policy of ServingPolicy. scales are the session counts to sweep;
// window is the pipeline depth of the sweep (the serialized/pipelined
// comparison pair always runs windows 1 and 4).
func (h *Harness) ServingSweep(ctx context.Context, scales []int, window int) (*ServingReport, error) {
	spec, err := fedfunc.SpecByName(ServingFunction)
	if err != nil {
		return nil, err
	}
	service, err := measureHot(ctx, h.wf, spec, 1)
	if err != nil {
		return nil, err
	}
	base := ServingConfig{
		Requests: 4,
		Service:  service,
		GenGap:   service / 2,
		Ramp:     1000 * simlat.PaperMS, // one virtual second
		Policy:   ServingPolicy(),
	}
	rep := &ServingReport{Service: service}
	for _, n := range scales {
		cfg := base
		cfg.Sessions = n
		cfg.Window = window
		rep.Rows = append(rep.Rows, ServingRow{Sessions: n, ServingResult: SimulateServing(cfg)})
	}
	// The comparison pair: light enough that both windows fit the server's
	// concurrency, so the difference is purely the client-side pipeline.
	light := base
	light.Sessions = 64
	light.Window = 1
	rep.Serialized = SimulateServing(light)
	light.Window = 4
	rep.Pipelined = SimulateServing(light)
	return rep, nil
}

// RenderServing formats the E16 report.
func RenderServing(rep *ServingReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving sweep: %d stmts/session, service %s hot, window %d, ramp 1 s (virtual), admission %d running / %d queued\n\n",
		rep.Rows[0].Cfg.Requests, fmtPaperMS(rep.Service), rep.Rows[0].Cfg.Window,
		rep.Rows[0].Cfg.Policy.MaxConcurrent, rep.Rows[0].Cfg.Policy.QueueDepth)
	fmt.Fprintf(&b, "%10s %10s %8s %12s %12s %14s\n", "sessions", "completed", "shed", "p50", "p99", "stmts/s")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "%10d %10d %8d %12s %12s %14.1f\n",
			r.Sessions, r.Completed, r.Shed, fmtPaperMS(r.P50), fmtPaperMS(r.P99), r.Throughput)
	}
	fmt.Fprintf(&b, "\nProtocol comparison at %d sessions (no admission pressure):\n", rep.Serialized.Cfg.Sessions)
	fmt.Fprintf(&b, "  serialized (window 1): p50 %s, p99 %s\n", fmtPaperMS(rep.Serialized.P50), fmtPaperMS(rep.Serialized.P99))
	fmt.Fprintf(&b, "  pipelined  (window 4): p50 %s, p99 %s\n", fmtPaperMS(rep.Pipelined.P50), fmtPaperMS(rep.Pipelined.P99))
	return b.String()
}
