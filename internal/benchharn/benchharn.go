// Package benchharn is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (Sect. 3 and Sect. 4) on the
// simulated testbed.
//
//	E1 — Sect. 3 capability table (mapping complexity per architecture)
//	E2 — Fig. 5 elapsed-time comparison over the mapping catalog
//	E3 — Fig. 6 time-portion breakdowns for GetNoSuppComp
//	E4 — cold / warm / hot boot states
//	E5 — parallel vs sequential function under both architectures
//	E6 — do-until loop scaling (AllCompNames)
//	E7 — controller ablation
//	E8 — batch scaling (extension: lateral driver-table joins)
//	E9 — intra-query parallelism sweep (extension: ParallelApply DOP)
//	E10 — Fig. 6 from live spans (extension: trace-derived breakdowns)
//
// All measurements run on the deterministic virtual clock, so the harness
// produces identical numbers on every machine; the testing.B benchmarks in
// the repository root replay the same workloads in wall mode.
package benchharn

import (
	"context"
	"fmt"
	"strings"
	"time"

	"fedwf/internal/appsys"
	"fedwf/internal/exec"
	"fedwf/internal/fedfunc"
	"fedwf/internal/simlat"
	"fedwf/internal/udtf"
	"fedwf/internal/wfms"
)

// Harness owns one wired instance of each architecture over shared
// application systems.
type Harness struct {
	profile simlat.Profile
	apps    *appsys.Registry
	wf, ud  *fedfunc.Stack
}

// New builds a harness with the calibrated default profile.
func New() (*Harness, error) {
	return NewWithProfile(simlat.DefaultProfile())
}

// NewWithProfile builds a harness with a custom cost profile.
func NewWithProfile(profile simlat.Profile) (*Harness, error) {
	apps, err := appsys.BuildScenario()
	if err != nil {
		return nil, err
	}
	wf, err := fedfunc.NewStack(fedfunc.ArchWfMS, fedfunc.Options{Profile: profile, Apps: apps})
	if err != nil {
		return nil, err
	}
	ud, err := fedfunc.NewStack(fedfunc.ArchUDTF, fedfunc.Options{Profile: profile, Apps: apps})
	if err != nil {
		return nil, err
	}
	return &Harness{profile: profile, apps: apps, wf: wf, ud: ud}, nil
}

// Profile returns the harness's cost profile.
func (h *Harness) Profile() simlat.Profile { return h.profile }

// WfMSStack returns the workflow-architecture stack.
func (h *Harness) WfMSStack() *fedfunc.Stack { return h.wf }

// UDTFStack returns the UDTF-architecture stack.
func (h *Harness) UDTFStack() *fedfunc.Stack { return h.ud }

// measureHot returns the virtual elapsed time of one repeated (hot) call.
func measureHot(ctx context.Context, s *fedfunc.Stack, spec *fedfunc.Spec, sample int) (time.Duration, error) {
	if _, err := s.CallSpecContext(ctx, simlat.Free(), spec, sample); err != nil {
		return 0, err
	}
	task := simlat.NewVirtualTask()
	if _, err := s.CallSpecContext(ctx, task, spec, sample); err != nil {
		return 0, err
	}
	return task.Elapsed(), nil
}

// ------------------------------------------------------------------- E1

// CapabilityRow is one line of the Sect. 3 table, annotated with whether
// the mapping actually executed on each stack.
type CapabilityRow struct {
	Case          string
	Function      string
	UDTFMechanism string
	WfMSMechanism string
	UDTFRuns      bool
	WfMSRuns      bool
}

// Capabilities executes every mapping on both stacks and reports the
// Sect. 3 support matrix from observed behaviour.
func (h *Harness) Capabilities(ctx context.Context) ([]CapabilityRow, error) {
	var rows []CapabilityRow
	for _, spec := range fedfunc.Specs() {
		row := CapabilityRow{
			Case:          spec.Case.String(),
			Function:      spec.Name,
			UDTFMechanism: spec.UDTFMechanism,
			WfMSMechanism: spec.WfMSMechanism,
		}
		if _, err := h.wf.CallSpecContext(ctx, simlat.Free(), spec, 0); err == nil {
			row.WfMSRuns = true
		}
		if spec.SupportsUDTF() {
			if _, err := h.ud.CallSpecContext(ctx, simlat.Free(), spec, 0); err == nil {
				row.UDTFRuns = true
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderCapabilities prints the support matrix like the paper's table.
func RenderCapabilities(rows []CapabilityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-20s %-9s %-9s %-55s %s\n",
		"Case", "Federated function", "UDTF", "WfMS", "UDTF mechanism", "WfMS mechanism")
	b.WriteString(strings.Repeat("-", 150) + "\n")
	mark := func(ok bool) string {
		if ok {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-20s %-9s %-9s %-55s %s\n",
			r.Case, r.Function, mark(r.UDTFRuns), mark(r.WfMSRuns), r.UDTFMechanism, r.WfMSMechanism)
	}
	return b.String()
}

// ------------------------------------------------------------------- E2

// Fig5Row is one bar pair of Fig. 5.
type Fig5Row struct {
	Function string
	Case     string
	LocalFns int
	WfMS     time.Duration // 0 when unsupported
	UDTF     time.Duration // 0 when unsupported
	Ratio    float64       // WfMS / UDTF, 0 when either is unsupported
}

// Fig5 measures every federated function of the catalog on both
// architectures with repeated (hot) calls.
func (h *Harness) Fig5(ctx context.Context) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, spec := range fedfunc.Specs() {
		row := Fig5Row{Function: spec.Name, Case: spec.Case.String(), LocalFns: len(spec.LocalFunctions)}
		if spec.Name == "AllCompNames" {
			// The loop executes one local function per component; count the
			// calls it actually makes.
			row.LocalFns = appsys.NumComponents
		}
		d, err := measureHot(ctx, h.wf, spec, 0)
		if err != nil {
			return nil, fmt.Errorf("benchharn: %s on WfMS: %w", spec.Name, err)
		}
		row.WfMS = d
		if spec.SupportsUDTF() {
			d, err := measureHot(ctx, h.ud, spec, 0)
			if err != nil {
				return nil, fmt.Errorf("benchharn: %s on UDTF: %w", spec.Name, err)
			}
			row.UDTF = d
			row.Ratio = float64(row.WfMS) / float64(row.UDTF)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig5 prints the comparison like the paper's bar chart, as rows.
func RenderFig5(rows []Fig5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-18s %7s %12s %12s %8s\n",
		"Federated function", "Case", "LocalFn", "WfMS", "UDTF", "Ratio")
	b.WriteString(strings.Repeat("-", 84) + "\n")
	for _, r := range rows {
		udtfCol, ratioCol := "not supp.", "-"
		if r.UDTF > 0 {
			udtfCol = fmtPaperMS(r.UDTF)
			ratioCol = fmt.Sprintf("%.2f", r.Ratio)
		}
		fmt.Fprintf(&b, "%-22s %-18s %7d %12s %12s %8s\n",
			r.Function, r.Case, r.LocalFns, fmtPaperMS(r.WfMS), udtfCol, ratioCol)
	}
	return b.String()
}

// ------------------------------------------------------------------- E3

// Breakdown is one architecture's Fig. 6 time-portion table.
type Breakdown struct {
	Arch  string
	Total time.Duration
	Steps []BreakdownStep
}

// BreakdownStep is one labelled portion.
type BreakdownStep struct {
	Name    string
	Total   time.Duration
	Percent int
}

// Fig6 produces the step breakdown of one hot GetNoSuppComp call under
// each architecture.
func (h *Harness) Fig6(ctx context.Context) (wf, ud *Breakdown, err error) {
	spec, err := fedfunc.SpecByName("GetNoSuppComp")
	if err != nil {
		return nil, nil, err
	}
	wf, err = breakdownOf(ctx, h.wf, spec)
	if err != nil {
		return nil, nil, err
	}
	ud, err = breakdownOf(ctx, h.ud, spec)
	if err != nil {
		return nil, nil, err
	}
	return wf, ud, nil
}

func breakdownOf(ctx context.Context, s *fedfunc.Stack, spec *fedfunc.Spec) (*Breakdown, error) {
	if _, err := s.CallSpecContext(ctx, simlat.Free(), spec, 0); err != nil {
		return nil, err
	}
	task := simlat.NewVirtualTask()
	rec := simlat.NewRecorder()
	task.SetRecorder(rec)
	if _, err := s.CallSpecContext(ctx, task, spec, 0); err != nil {
		return nil, err
	}
	out := &Breakdown{Arch: s.Arch().String(), Total: rec.Total()}
	for _, p := range rec.Percentages() {
		var total time.Duration
		for _, st := range rec.Steps() {
			if st.Name == p.Name {
				total = st.Total
			}
		}
		out.Steps = append(out.Steps, BreakdownStep{Name: p.Name, Total: total, Percent: p.Percent})
	}
	return out, nil
}

// RenderBreakdown prints one Fig. 6 table.
func RenderBreakdown(b *Breakdown) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (total %s)\n", b.Arch, fmtPaperMS(b.Total))
	fmt.Fprintf(&sb, "  %-42s %10s %6s\n", "Step", "Time", "Share")
	sb.WriteString("  " + strings.Repeat("-", 60) + "\n")
	for _, s := range b.Steps {
		fmt.Fprintf(&sb, "  %-42s %10s %5d%%\n", s.Name, fmtPaperMS(s.Total), s.Percent)
	}
	return sb.String()
}

// ------------------------------------------------------------------- E4

// BootRow reports the three boot states of one function under one
// architecture.
type BootRow struct {
	Arch     string
	Function string
	Cold     time.Duration
	Warm     time.Duration
	Hot      time.Duration
}

// BootStates measures the initial (cold), after-other-function (warm), and
// repeated (hot) call times of a federated function under both stacks.
func (h *Harness) BootStates(ctx context.Context, function string) ([]BootRow, error) {
	spec, err := fedfunc.SpecByName(function)
	if err != nil {
		return nil, err
	}
	var rows []BootRow
	for _, s := range []*fedfunc.Stack{h.wf, h.ud} {
		if !s.Supports(spec.Name) {
			continue
		}
		row := BootRow{Arch: s.Arch().String(), Function: spec.Name}
		measure := func(level udtf.BootLevel) (time.Duration, error) {
			s.Flush(level)
			task := simlat.NewVirtualTask()
			if _, err := s.CallSpecContext(ctx, task, spec, 0); err != nil {
				return 0, err
			}
			return task.Elapsed(), nil
		}
		if row.Cold, err = measure(udtf.FlushCold); err != nil {
			return nil, err
		}
		if row.Warm, err = measure(udtf.FlushWarm); err != nil {
			return nil, err
		}
		if row.Hot, err = measure(udtf.FlushHot); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderBootStates prints the E4 table.
func RenderBootStates(rows []BootRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-18s %12s %12s %12s\n", "Architecture", "Function", "Cold", "Warm", "Hot")
	b.WriteString(strings.Repeat("-", 88) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %-18s %12s %12s %12s\n",
			r.Arch, r.Function, fmtPaperMS(r.Cold), fmtPaperMS(r.Warm), fmtPaperMS(r.Hot))
	}
	return b.String()
}

// ------------------------------------------------------------------- E5

// ParallelRow compares the parallel and sequential two-function mappings
// under one architecture.
type ParallelRow struct {
	Arch       string
	Parallel   time.Duration // GetSuppQualRelia
	Sequential time.Duration // GetSuppQual
}

// ParallelVsSequential reproduces the Sect. 4 observation about parallel
// activities.
func (h *Harness) ParallelVsSequential(ctx context.Context) ([]ParallelRow, error) {
	par, err := fedfunc.SpecByName("GetSuppQualRelia")
	if err != nil {
		return nil, err
	}
	seq, err := fedfunc.SpecByName("GetSuppQual")
	if err != nil {
		return nil, err
	}
	var rows []ParallelRow
	for _, s := range []*fedfunc.Stack{h.wf, h.ud} {
		row := ParallelRow{Arch: s.Arch().String()}
		if row.Parallel, err = measureHot(ctx, s, par, 0); err != nil {
			return nil, err
		}
		if row.Sequential, err = measureHot(ctx, s, seq, 0); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderParallel prints the E5 table.
func RenderParallel(rows []ParallelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %14s %s\n", "Architecture", "Parallel", "Sequential", "Faster variant")
	b.WriteString(strings.Repeat("-", 78) + "\n")
	for _, r := range rows {
		faster := "sequential"
		if r.Parallel < r.Sequential {
			faster = "parallel"
		}
		fmt.Fprintf(&b, "%-28s %14s %14s %s\n", r.Arch, fmtPaperMS(r.Parallel), fmtPaperMS(r.Sequential), faster)
	}
	return b.String()
}

// ------------------------------------------------------------------- E6

// LoopRow is one point of the loop-scaling series.
type LoopRow struct {
	Calls   int
	Elapsed time.Duration
}

// LoopScaling runs AllCompNames workflows with increasing iteration
// counts and reports the elapsed times; the paper observes a linear rise.
func (h *Harness) LoopScaling(ctx context.Context, counts []int) ([]LoopRow, error) {
	// Run the loop directly on the workflow stack's process with a start
	// cursor limiting the iteration count.
	var rows []LoopRow
	for _, n := range counts {
		if n < 1 || n > appsys.NumComponents {
			return nil, fmt.Errorf("benchharn: loop count %d out of range 1..%d", n, appsys.NumComponents)
		}
		process := fedfunc.AllCompNamesProcess(appsys.NumComponents - n)
		task, err := h.runProcessHot(ctx, process)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LoopRow{Calls: n, Elapsed: task})
	}
	return rows, nil
}

// runProcessHot measures one process run through a scratch workflow UDTF
// on a fresh stack sharing the harness's application systems.
func (h *Harness) runProcessHot(ctx context.Context, process *wfms.Process) (time.Duration, error) {
	stack, err := fedfunc.NewStack(fedfunc.ArchWfMS, fedfunc.Options{Profile: h.profile, Apps: h.apps})
	if err != nil {
		return 0, err
	}
	process.Name = process.Name + "_Scaled"
	if err := stack.RegisterProcess(process); err != nil {
		return 0, err
	}
	if _, err := stack.CallContext(ctx, simlat.Free(), process.Name, nil); err != nil {
		return 0, err
	}
	task := simlat.NewVirtualTask()
	if _, err := stack.CallContext(ctx, task, process.Name, nil); err != nil {
		return 0, err
	}
	return task.Elapsed(), nil
}

// RenderLoop prints the E6 series with a linearity check column.
func RenderLoop(rows []LoopRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %14s %16s\n", "Calls", "Elapsed", "Per call")
	b.WriteString(strings.Repeat("-", 42) + "\n")
	for _, r := range rows {
		per := time.Duration(0)
		if r.Calls > 0 {
			per = r.Elapsed / time.Duration(r.Calls)
		}
		fmt.Fprintf(&b, "%8d %14s %16s\n", r.Calls, fmtPaperMS(r.Elapsed), fmtPaperMS(per))
	}
	return b.String()
}

// ------------------------------------------------------------------- E7

// AblationRow reports one architecture with and without the controller.
type AblationRow struct {
	Arch      string
	With      time.Duration
	Without   time.Duration
	SavingPct float64
}

// ControllerAblation measures GetNoSuppComp with the controller in the
// path and with direct connections.
func (h *Harness) ControllerAblation(ctx context.Context) ([]AblationRow, float64, float64, error) {
	spec, err := fedfunc.SpecByName("GetNoSuppComp")
	if err != nil {
		return nil, 0, 0, err
	}
	var rows []AblationRow
	measure := func(arch fedfunc.Arch, direct bool) (time.Duration, error) {
		s, err := fedfunc.NewStack(arch, fedfunc.Options{Profile: h.profile, Apps: h.apps, Direct: direct})
		if err != nil {
			return 0, err
		}
		return measureHot(ctx, s, spec, 0)
	}
	var withT, withoutT [2]time.Duration
	for i, arch := range []fedfunc.Arch{fedfunc.ArchWfMS, fedfunc.ArchUDTF} {
		w, err := measure(arch, false)
		if err != nil {
			return nil, 0, 0, err
		}
		wo, err := measure(arch, true)
		if err != nil {
			return nil, 0, 0, err
		}
		withT[i], withoutT[i] = w, wo
		rows = append(rows, AblationRow{
			Arch:      arch.String(),
			With:      w,
			Without:   wo,
			SavingPct: (1 - float64(wo)/float64(w)) * 100,
		})
	}
	ratioWith := float64(withT[0]) / float64(withT[1])
	ratioWithout := float64(withoutT[0]) / float64(withoutT[1])
	return rows, ratioWith, ratioWithout, nil
}

// RenderAblation prints the E7 table.
func RenderAblation(rows []AblationRow, ratioWith, ratioWithout float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %14s %10s\n", "Architecture", "With ctl", "Without ctl", "Saving")
	b.WriteString(strings.Repeat("-", 72) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %14s %14s %9.1f%%\n", r.Arch, fmtPaperMS(r.With), fmtPaperMS(r.Without), r.SavingPct)
	}
	fmt.Fprintf(&b, "WfMS/UDTF ratio: %.2f with controller -> %.2f without\n", ratioWith, ratioWithout)
	return b.String()
}

// fmtPaperMS renders a duration in paper milliseconds.
func fmtPaperMS(d time.Duration) string {
	return fmt.Sprintf("%.1f ms", float64(d)/float64(simlat.PaperMS))
}

// ------------------------------------------------------------------- E8

// BatchRow is one point of the batch-scaling series (extension
// experiment: the paper defers "scalability" to future work).
type BatchRow struct {
	Calls int
	WfMS  time.Duration
	UDTF  time.Duration
}

// BatchScaling drives both architectures with a batch query — a lateral
// join of a local driver table against the federated function
// GetSuppQualRelia — and reports elapsed time per batch size. Both
// architectures scale linearly in the number of federated calls; the gap
// between them is the per-call overhead difference of Fig. 5.
func (h *Harness) BatchScaling(ctx context.Context, sizes []int) ([]BatchRow, error) {
	var rows []BatchRow
	for _, n := range sizes {
		if n < 1 {
			return nil, fmt.Errorf("benchharn: batch size %d out of range", n)
		}
		row := BatchRow{Calls: n}
		for _, arch := range []fedfunc.Arch{fedfunc.ArchWfMS, fedfunc.ArchUDTF} {
			stack, err := fedfunc.NewStack(arch, fedfunc.Options{Profile: h.profile, Apps: h.apps})
			if err != nil {
				return nil, err
			}
			session := stack.Engine().NewSession()
			session.MustExecContext(ctx, "CREATE TABLE batch_driver (SupplierNo INT)")
			for i := 0; i < n; i++ {
				session.MustExecContext(ctx, fmt.Sprintf("INSERT INTO batch_driver VALUES (%d)", 1+i%appsys.NumSuppliers))
			}
			query := `SELECT COUNT(*) FROM batch_driver b, TABLE (GetSuppQualRelia(b.SupplierNo)) AS QR`
			if _, err := session.QueryContext(ctx, query); err != nil { // warm
				return nil, err
			}
			task := simlat.NewVirtualTask()
			session.SetTask(task)
			if _, err := session.QueryContext(ctx, query); err != nil {
				return nil, err
			}
			if arch == fedfunc.ArchWfMS {
				row.WfMS = task.Elapsed()
			} else {
				row.UDTF = task.Elapsed()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderBatch prints the E8 series.
func RenderBatch(rows []BatchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %14s %14s %8s\n", "Calls", "WfMS", "UDTF", "Ratio")
	b.WriteString(strings.Repeat("-", 50) + "\n")
	for _, r := range rows {
		ratio := float64(r.WfMS) / float64(r.UDTF)
		fmt.Fprintf(&b, "%8d %14s %14s %8.2f\n", r.Calls, fmtPaperMS(r.WfMS), fmtPaperMS(r.UDTF), ratio)
	}
	return b.String()
}

// ------------------------------------------------------------------- E9

// dopDriverRows is the batch size of the E9 sweep; suppliers cycle over
// dopDistinctKeys distinct numbers, so half the lateral invocations are
// duplicates and exercise the function cache under parallelism. Every DOP
// of the sweep divides dopDistinctKeys, which keeps each cache key pinned
// to one round-robin worker and the reported counters deterministic.
const (
	dopDriverRows   = 16
	dopDistinctKeys = 8
)

// DOPRow is one point of the intra-query parallelism sweep (extension
// experiment: parallel lateral execution via ParallelApply).
type DOPRow struct {
	Arch     fedfunc.Arch
	Function string
	DOP      int // 1 = sequential Apply plan
	Elapsed  time.Duration
	Speedup  float64 // sequential elapsed / this elapsed
	Stats    exec.CacheStats
}

// ParallelLateral sweeps the degree of parallelism over a lateral batch
// query — a 16-row driver table joined against a federated function — for
// both architectures and two mapping shapes: the independent composition
// GetSuppQualRelia and the 1:n mapping GetSuppGrade. DOP 1 runs today's
// sequential Apply; higher DOPs run ParallelApply, whose simlat Fork/Join
// accounting makes the virtual clock report the max-branch elapsed time.
// The function cache is enabled throughout, so the rows also show the
// per-statement hit/miss/coalesced counters.
func (h *Harness) ParallelLateral(ctx context.Context, dops []int) ([]DOPRow, error) {
	var rows []DOPRow
	for _, fn := range []string{"GetSuppQualRelia", "GetSuppGrade"} {
		for _, arch := range []fedfunc.Arch{fedfunc.ArchWfMS, fedfunc.ArchUDTF} {
			stack, err := fedfunc.NewStack(arch, fedfunc.Options{Profile: h.profile, Apps: h.apps})
			if err != nil {
				return nil, err
			}
			eng := stack.Engine()
			eng.SetFunctionCache(true)
			session := eng.NewSession()
			session.MustExecContext(ctx, "CREATE TABLE dop_driver (SupplierNo INT)")
			for i := 0; i < dopDriverRows; i++ {
				session.MustExecContext(ctx, fmt.Sprintf("INSERT INTO dop_driver VALUES (%d)", 1+i%dopDistinctKeys))
			}
			query := fmt.Sprintf(`SELECT COUNT(*) FROM dop_driver d, TABLE (%s(d.SupplierNo)) AS F`, fn)
			var seq time.Duration
			for _, dop := range dops {
				if dop < 1 {
					return nil, fmt.Errorf("benchharn: dop %d out of range", dop)
				}
				if dop > 1 {
					eng.SetParallelism(dop)
				} else {
					eng.SetParallelism(0)
				}
				session.SetTask(simlat.Free())
				if _, err := session.QueryContext(ctx, query); err != nil { // warm boot state
					return nil, err
				}
				task := simlat.NewVirtualTask()
				session.SetTask(task)
				if _, err := session.QueryContext(ctx, query); err != nil {
					return nil, err
				}
				row := DOPRow{
					Arch: arch, Function: fn, DOP: dop,
					Elapsed: task.Elapsed(), Stats: session.LastCacheStats(),
				}
				if dop == 1 {
					seq = row.Elapsed
				}
				if seq > 0 {
					row.Speedup = float64(seq) / float64(row.Elapsed)
				}
				rows = append(rows, row)
			}
			eng.SetParallelism(0)
		}
	}
	return rows, nil
}

// RenderDOP prints the E9 sweep.
func RenderDOP(rows []DOPRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-6s %4s %14s %8s %6s %6s %10s\n",
		"Function", "Arch", "DOP", "Elapsed", "Speedup", "Hits", "Miss", "Coalesced")
	b.WriteString(strings.Repeat("-", 80) + "\n")
	for _, r := range rows {
		arch := "WfMS"
		if r.Arch == fedfunc.ArchUDTF {
			arch = "UDTF"
		}
		fmt.Fprintf(&b, "%-18s %-6s %4d %14s %7.2fx %6d %6d %10d\n",
			r.Function, arch, r.DOP, fmtPaperMS(r.Elapsed), r.Speedup,
			r.Stats.Hits, r.Stats.Misses, r.Stats.Coalesced)
	}
	return b.String()
}

// ------------------------------------------------------------------ E13

// setDOP is the degree of parallelism of E13's parallel modes.
const setDOP = 4

// SetRow is one point of the set-orientation experiment E13: one (arch,
// driver size, execution mode) cell with its virtual elapsed time and the
// stack's wire-request and workflow-instance counters.
type SetRow struct {
	Arch    fedfunc.Arch
	N       int    // driver-table rows
	Mode    string // per-row, batched, parallel, batched+parallel
	Elapsed time.Duration
	RPCs    int64
	WfInst  int64 // workflow process instances (WfMS architecture only)
}

// SetOriented measures the set-orientation win (E13, extension): a lateral
// join of an N-row driver table of component names against the trivial
// federated function GibKompNr, under four execution modes — per-row and
// batched, each sequential and parallel. Batching amortizes the per-call
// federation overheads (UDTF entry, RPC round trip, workflow instance
// start) across chunks of batchSize rows, so the batched modes must show
// both fewer wire requests and less virtual elapsed time; the counters in
// the rows let callers assert exactly that.
func (h *Harness) SetOriented(ctx context.Context, ns []int, batchSize int) ([]SetRow, error) {
	if batchSize < 2 {
		return nil, fmt.Errorf("benchharn: batch size %d out of range", batchSize)
	}
	modes := []struct {
		name  string
		batch int
		dop   int
	}{
		{"per-row", 0, 1},
		{"batched", batchSize, 1},
		{"parallel", 0, setDOP},
		{"batched+parallel", batchSize, setDOP},
	}
	var rows []SetRow
	for _, arch := range []fedfunc.Arch{fedfunc.ArchWfMS, fedfunc.ArchUDTF} {
		stack, err := fedfunc.NewStack(arch, fedfunc.Options{Profile: h.profile, Apps: h.apps})
		if err != nil {
			return nil, err
		}
		eng := stack.Engine()
		session := eng.NewSession()
		for _, n := range ns {
			if n < 1 || n > appsys.NumComponents {
				return nil, fmt.Errorf("benchharn: driver size %d out of range", n)
			}
			driver := fmt.Sprintf("set_driver_%d", n)
			session.MustExecContext(ctx, fmt.Sprintf("CREATE TABLE %s (KompName VARCHAR(30))", driver))
			for i := 0; i < n; i++ {
				// Distinct names, so no cache effect hides a wire request.
				session.MustExecContext(ctx, fmt.Sprintf("INSERT INTO %s VALUES ('%s')", driver, appsys.ComponentName(1+i)))
			}
			query := fmt.Sprintf(`SELECT COUNT(*) FROM %s d, TABLE (GibKompNr(d.KompName)) AS K`, driver)
			for _, m := range modes {
				eng.SetBatchSize(m.batch)
				if m.dop > 1 {
					eng.SetParallelism(m.dop)
				} else {
					eng.SetParallelism(0)
				}
				session.SetTask(simlat.Free())
				if _, err := session.QueryContext(ctx, query); err != nil { // warm boot state
					return nil, err
				}
				stack.ResetCounters()
				task := simlat.NewVirtualTask()
				session.SetTask(task)
				if _, err := session.QueryContext(ctx, query); err != nil {
					return nil, err
				}
				rpcs, inst := stack.Counters()
				rows = append(rows, SetRow{
					Arch: arch, N: n, Mode: m.name,
					Elapsed: task.Elapsed(), RPCs: rpcs, WfInst: inst,
				})
			}
			eng.SetBatchSize(0)
			eng.SetParallelism(0)
		}
	}
	return rows, nil
}

// RenderSetOriented prints the E13 grid.
func RenderSetOriented(rows []SetRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %4s %-18s %14s %6s %8s\n", "Arch", "N", "Mode", "Elapsed", "RPCs", "WfInst")
	b.WriteString(strings.Repeat("-", 62) + "\n")
	for _, r := range rows {
		arch := "WfMS"
		if r.Arch == fedfunc.ArchUDTF {
			arch = "UDTF"
		}
		fmt.Fprintf(&b, "%-6s %4d %-18s %14s %6d %8d\n",
			arch, r.N, r.Mode, fmtPaperMS(r.Elapsed), r.RPCs, r.WfInst)
	}
	return b.String()
}
