package benchharn

import (
	"context"
	"strings"
	"testing"
)

// TestFig6FromSpans is the E10 acceptance check: the Fig. 6 breakdown
// reconstructed from live span trees must agree exactly with the one the
// simlat.Recorder produces, on both architectures.
func TestFig6FromSpans(t *testing.T) {
	h := newHarness(t)
	results, err := h.Fig6FromSpans(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want one per architecture", len(results))
	}
	for _, r := range results {
		if !r.Match {
			t.Errorf("%s: trace-derived breakdown diverges from Recorder\ntrace: %+v\nrecorder: %+v",
				r.Arch, r.Trace, r.Recorder)
		}
		if !strings.Contains(r.Tree, "stack.call") {
			t.Errorf("%s: span tree lacks root:\n%s", r.Arch, r.Tree)
		}
		if r.Trace.Total != r.Recorder.Total || r.Trace.Total == 0 {
			t.Errorf("%s: totals: trace %v, recorder %v", r.Arch, r.Trace.Total, r.Recorder.Total)
		}
		out := RenderSpanFig6(r)
		if !strings.Contains(out, "MATCH") {
			t.Errorf("%s render:\n%s", r.Arch, out)
		}
	}
}
