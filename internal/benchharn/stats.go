package benchharn

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"fedwf/internal/fdbs"
	"fedwf/internal/fedfunc"
	"fedwf/internal/obs"
	"fedwf/internal/obs/collector"
	"fedwf/internal/obs/stats"
	"fedwf/internal/simlat"
)

// StatsReport is the E14 result: the statement-statistics warehouse's
// view of a deterministic workload next to independently collected
// reference numbers, so paperbench can assert the warehouse is exact —
// not merely plausible — on everything except the quantiles, which are
// bounded by the sketch's one-bucket error.
type StatsReport struct {
	Arch       string
	Statements int // statements executed

	// Warehouse view.
	Fingerprints int
	Query        string // normalized text of the single expected fingerprint
	Calls        int64
	Rows         int64
	RPCs         int64
	Instances    int64
	Paper        time.Duration // warehouse total simulated time
	P99MS        float64       // sketch p99 of per-statement paper ms

	// Independent references: the integration stack's wire counters and
	// the serving path's per-statement metadata.
	RefRows      int64
	RefRPCs      int64
	RefInstances int64
	RefPaper     time.Duration // sum of per-statement paper_ns metadata
	ExactP99MS   float64       // exact p99 over the recorded per-statement times
}

// ExactTotals reports whether every warehouse aggregate equals its
// independent reference.
func (r *StatsReport) ExactTotals() bool {
	return r.Fingerprints == 1 &&
		r.Calls == int64(r.Statements) &&
		r.Rows == r.RefRows &&
		r.RPCs == r.RefRPCs &&
		r.Instances == r.RefInstances &&
		r.Paper == r.RefPaper
}

// P99WithinOneBucket reports whether the sketch's p99 sits in
// [exact, exact*SketchGamma] — the log-bucket error bound.
func (r *StatsReport) P99WithinOneBucket() bool {
	return r.P99MS >= r.ExactP99MS && r.P99MS <= r.ExactP99MS*stats.SketchGamma
}

// StatementStats runs the E14 experiment: n statements over the same
// statement shape with rotating literals against a fresh federated server
// (tail sampling off so the workload is the only nondeterminism-free
// variable), then checks the warehouse against the stack's own counters
// and the serving metadata. One statement shape must yield exactly one
// fingerprint; calls, rows, RPCs, workflow instances, and total simulated
// time must match the references exactly; the p99 read off the sketch
// must sit within one log bucket of the exact p99.
func (h *Harness) StatementStats(ctx context.Context, arch fedfunc.Arch, n int) (*StatsReport, error) {
	if n < 2 {
		return nil, fmt.Errorf("benchharn: statement count %d out of range", n)
	}
	srv, err := fdbs.NewServer(fdbs.Config{Arch: arch, Trace: collector.Policy{SampleRate: -1}})
	if err != nil {
		return nil, err
	}
	srv.Stack().ResetCounters()

	rep := &StatsReport{Arch: arch.Label(), Statements: n}
	perCallMS := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		// Rotating supplier literals: every statement is textually
		// distinct, so coalescing to one fingerprint is the normalizer's
		// doing, not the workload's.
		stmt := fmt.Sprintf("SELECT Q.Qual FROM TABLE (GetSuppQual('Supplier%d')) AS Q", i%9+1)
		tab, meta, err := srv.ExecTracedContext(ctx, stmt, obs.TraceContext{})
		if err != nil {
			return nil, err
		}
		rep.RefRows += int64(tab.Len())
		ns, err := strconv.ParseInt(meta["paper_ns"], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchharn: bad paper_ns metadata %q: %w", meta["paper_ns"], err)
		}
		rep.RefPaper += time.Duration(ns)
		perCallMS = append(perCallMS, float64(ns)/float64(simlat.PaperMS))
	}
	rep.RefRPCs, rep.RefInstances = srv.Stack().Counters()

	stmts := srv.Stats().Statements()
	rep.Fingerprints = len(stmts)
	if len(stmts) > 0 {
		top := stmts[0]
		rep.Query = top.Query
		rep.Calls = top.Calls
		rep.Rows = top.Rows
		rep.RPCs = top.RPCs
		rep.Instances = top.Instances
		rep.P99MS = top.P99MS
	}
	rep.Paper = srv.Stats().Totals().Paper

	sort.Float64s(perCallMS)
	// Rank = ceil(q*count), 1-indexed — the sketch's Quantile definition —
	// so the one-bucket bound compares like with like.
	rank := (99*len(perCallMS) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	rep.ExactP99MS = perCallMS[rank-1]
	return rep, nil
}

// RenderStatementStats prints the E14 warehouse-vs-reference table.
func RenderStatementStats(r *StatsReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d statements, %d fingerprint(s): %s\n", r.Arch, r.Statements, r.Fingerprints, r.Query)
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "", "warehouse", "reference")
	b.WriteString(strings.Repeat("-", 38) + "\n")
	fmt.Fprintf(&b, "%-12s %12d %12d\n", "calls", r.Calls, r.Statements)
	fmt.Fprintf(&b, "%-12s %12d %12d\n", "rows", r.Rows, r.RefRows)
	fmt.Fprintf(&b, "%-12s %12d %12d\n", "rpcs", r.RPCs, r.RefRPCs)
	fmt.Fprintf(&b, "%-12s %12d %12d\n", "wf-instances", r.Instances, r.RefInstances)
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "paper total", fmtPaperMS(r.Paper), fmtPaperMS(r.RefPaper))
	fmt.Fprintf(&b, "%-12s %9.3fms %9.3fms  (bound %.3fms)\n", "p99", r.P99MS, r.ExactP99MS, r.ExactP99MS*stats.SketchGamma)
	return b.String()
}
