package benchharn

import (
	"context"
	"fmt"
	"strings"
	"time"

	"fedwf/internal/fdbs"
	"fedwf/internal/fedfunc"
	"fedwf/internal/obs"
	"fedwf/internal/obs/collector"
	"fedwf/internal/obs/journal"
	"fedwf/internal/resil"
	"fedwf/internal/simlat"
)

// AuditAccuracyReport is the first half of E15: the audit journal's view
// of a deterministic workload next to the integration stack's wire
// counters and the statement-statistics warehouse — three independently
// maintained books that must agree to the statement.
type AuditAccuracyReport struct {
	Arch       string
	Statements int

	// Journal view: sums over the statement events, plus the workflow
	// instance events the wide events claim to have started.
	JnlStatements int64
	JnlRows       int64
	JnlRPCs       int64
	JnlInstances  int64
	JnlInstEvents int64 // wf_instance events actually journaled
	JnlPaper      time.Duration

	// References: stack wire counters and warehouse totals.
	RefRPCs      int64
	RefInstances int64
	WhStatements int64
	WhRows       int64
	WhRPCs       int64
	WhInstances  int64
	WhPaper      time.Duration
}

// Exact reports whether journal, stack, and warehouse agree exactly.
func (r *AuditAccuracyReport) Exact() bool {
	return r.JnlStatements == int64(r.Statements) &&
		r.JnlRPCs == r.RefRPCs && r.JnlRPCs == r.WhRPCs &&
		r.JnlInstances == r.RefInstances && r.JnlInstances == r.WhInstances &&
		r.JnlInstEvents == r.JnlInstances &&
		r.WhStatements == int64(r.Statements) &&
		r.JnlRows == r.WhRows &&
		r.JnlPaper == r.WhPaper
}

// AuditAccuracy runs n statements of one shape with rotating literals
// against a fresh federated server and cross-checks the audit journal
// against the stack's wire counters and the warehouse's totals. Every
// aggregate must match exactly: the journal is a third book over the same
// workload, not a sampled approximation.
func (h *Harness) AuditAccuracy(ctx context.Context, arch fedfunc.Arch, n int) (*AuditAccuracyReport, error) {
	if n < 2 {
		return nil, fmt.Errorf("benchharn: statement count %d out of range", n)
	}
	srv, err := fdbs.NewServer(fdbs.Config{Arch: arch, Trace: collector.Policy{SampleRate: -1}})
	if err != nil {
		return nil, err
	}
	srv.Stack().ResetCounters()

	rep := &AuditAccuracyReport{Arch: arch.Label(), Statements: n}
	for i := 0; i < n; i++ {
		stmt := fmt.Sprintf("SELECT Q.Qual FROM TABLE (GetSuppQual('Supplier%d')) AS Q", i%9+1)
		if _, _, err := srv.ExecTracedContext(ctx, stmt, obs.TraceContext{}); err != nil {
			return nil, err
		}
	}
	rep.RefRPCs, rep.RefInstances = srv.Stack().Counters()

	for _, e := range srv.Journal().Snapshot() {
		switch e.Kind {
		case journal.KindStatement:
			rep.JnlStatements++
			rep.JnlRows += int64(e.Rows)
			rep.JnlRPCs += e.RPCs
			rep.JnlInstances += e.Instances
			rep.JnlPaper += e.DurVT
		case journal.KindInstance:
			rep.JnlInstEvents++
		}
	}

	tot := srv.Stats().Totals()
	rep.WhStatements = tot.Statements
	rep.WhRows = tot.Rows
	rep.WhRPCs = tot.RPCs
	rep.WhInstances = tot.Instances
	rep.WhPaper = tot.Paper
	return rep, nil
}

// AuditBurnReport is the second half of E15: the SLO monitor's
// multi-window view of a fault burst. A burst that is loud in the 5m
// window but quiet in the 1h window is exactly the signal the two-window
// burn-rate pattern exists to produce.
type AuditBurnReport struct {
	Seed    uint64
	Healthy int // healthy statements, spaced over virtual time
	Failing int // statements under a 100% injected error rate

	Objectives journal.Objectives
	Windows    []journal.WindowBurn
}

// Window returns the evaluation of the named window ("5m", "1h").
func (r *AuditBurnReport) Window(label string) journal.WindowBurn {
	for _, w := range r.Windows {
		if w.Window == label {
			return w
		}
	}
	return journal.WindowBurn{Window: label}
}

// BurstDetected reports the E15 acceptance shape: the fault burst pushes
// the 5-minute availability burn over 1.0 while the 1-hour window, diluted
// by an hour of healthy traffic, stays under 1.0.
func (r *AuditBurnReport) BurstDetected() bool {
	return r.Window("5m").AvailBurn > 1.0 && r.Window("1h").AvailBurn < 1.0
}

// AuditBurn drives the burn-rate demonstration: an hour of healthy
// statements on the virtual clock (one every 30 virtual seconds), then a
// 100% injected error rate on every application system and a short burst
// of failing statements. The deterministic injector seed makes the run
// replayable; the virtual clock makes the "hour" free.
func (h *Harness) AuditBurn(ctx context.Context, seed uint64) (*AuditBurnReport, error) {
	inj := resil.NewInjector(seed)
	srv, err := fdbs.NewServer(fdbs.Config{
		Arch:   fedfunc.ArchWfMS,
		Trace:  collector.Policy{SampleRate: -1},
		Faults: inj, // fault-free until the burst is planned below
	})
	if err != nil {
		return nil, err
	}
	// A 95% availability objective keeps the arithmetic legible: the error
	// budget is 5%, so the 1h window (5 errors in ~124 statements, ~4%)
	// stays under budget while the 5m window (5 errors in ~15) blows it.
	obj := journal.Objectives{Availability: 0.95, Latency: 250 * simlat.PaperMS}
	srv.Journal().SetObjectives(obj)

	rep := &AuditBurnReport{Seed: seed, Healthy: 120, Failing: 5, Objectives: obj}
	for i := 0; i < rep.Healthy; i++ {
		stmt := fmt.Sprintf("SELECT Q.Qual FROM TABLE (GetSuppQual('Supplier%d')) AS Q", i%9+1)
		if _, _, err := srv.ExecTracedContext(ctx, stmt, obs.TraceContext{}); err != nil {
			return nil, err
		}
		// Space the healthy traffic out on the journal's virtual clock so
		// 120 statements cover a virtual hour.
		srv.Journal().Advance(30 * time.Second)
	}

	for _, sys := range faultSystems {
		inj.Plan(sys, resil.FaultPlan{ErrorRate: 1})
	}
	for i := 0; i < rep.Failing; i++ {
		stmt := fmt.Sprintf("SELECT Q.Qual FROM TABLE (GetSuppQual('Supplier%d')) AS Q", i%9+1)
		if _, _, err := srv.ExecTracedContext(ctx, stmt, obs.TraceContext{}); err == nil {
			return nil, fmt.Errorf("benchharn: statement under a 100%% error rate succeeded")
		}
	}

	slo := srv.Journal().SLOReport()
	rep.Windows = slo.Windows
	return rep, nil
}

// RenderAuditAccuracy prints the E15 three-book comparison table.
func RenderAuditAccuracy(r *AuditAccuracyReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d statements — journal vs stack counters vs warehouse\n", r.Arch, r.Statements)
	fmt.Fprintf(&b, "%-14s %12s %12s %12s\n", "", "journal", "stack", "warehouse")
	b.WriteString(strings.Repeat("-", 53) + "\n")
	fmt.Fprintf(&b, "%-14s %12d %12s %12d\n", "statements", r.JnlStatements, "-", r.WhStatements)
	fmt.Fprintf(&b, "%-14s %12d %12s %12d\n", "rows", r.JnlRows, "-", r.WhRows)
	fmt.Fprintf(&b, "%-14s %12d %12d %12d\n", "rpcs", r.JnlRPCs, r.RefRPCs, r.WhRPCs)
	fmt.Fprintf(&b, "%-14s %12d %12d %12d\n", "wf-instances", r.JnlInstances, r.RefInstances, r.WhInstances)
	fmt.Fprintf(&b, "%-14s %12d %12s %12s  (wf_instance events)\n", "inst events", r.JnlInstEvents, "-", "-")
	fmt.Fprintf(&b, "%-14s %12s %12s %12s\n", "paper total", fmtPaperMS(r.JnlPaper), "-", fmtPaperMS(r.WhPaper))
	return b.String()
}

// RenderAuditBurn prints the E15 burn-rate table.
func RenderAuditBurn(r *AuditBurnReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d: %d healthy statements over a virtual hour, then %d failing (100%% injected errors)\n",
		r.Seed, r.Healthy, r.Failing)
	fmt.Fprintf(&b, "objectives: availability %.3f, latency %.0f paper-ms\n",
		r.Objectives.Availability, float64(r.Objectives.Latency)/float64(simlat.PaperMS))
	fmt.Fprintf(&b, "%-8s %11s %7s %6s %11s %11s\n", "window", "statements", "errors", "slow", "avail burn", "lat burn")
	b.WriteString(strings.Repeat("-", 58) + "\n")
	for _, w := range r.Windows {
		fmt.Fprintf(&b, "%-8s %11d %7d %6d %11.2f %11.2f\n",
			w.Window, w.Statements, w.Errors, w.Slow, w.AvailBurn, w.LatencyBurn)
	}
	return b.String()
}
