package benchharn

import (
	"context"
	"fmt"
	"strings"
	"time"

	"fedwf/internal/fedfunc"
	"fedwf/internal/obs"
	"fedwf/internal/simlat"
)

// ------------------------------------------------------------------- E10

// SpanFig6 is one architecture's Fig. 6 breakdown recovered from a live
// span trace (E10): the same hot GetNoSuppComp call carries both a
// simlat.Recorder and an obs tracer, and in virtual mode the step totals
// summed over the span tree must equal the Recorder's exactly — every
// labelled charge feeds both by construction.
type SpanFig6 struct {
	Arch      string
	ArchLabel string        // compact label (wfms/udtf), used in file names
	Tree      string        // rendered span tree of the traced call
	Data      *obs.SpanData // serializable span tree (paperbench -trace-out)
	Trace     *Breakdown    // step totals summed over the span tree
	Recorder  *Breakdown    // step totals from the simlat.Recorder
	Match     bool          // per-step totals identical between the two
}

// Fig6FromSpans reproduces the Fig. 6 breakdown of one hot GetNoSuppComp
// call per architecture from live spans and cross-checks it against the
// Recorder-derived reference.
func (h *Harness) Fig6FromSpans(ctx context.Context) ([]SpanFig6, error) {
	spec, err := fedfunc.SpecByName("GetNoSuppComp")
	if err != nil {
		return nil, err
	}
	var out []SpanFig6
	for _, s := range []*fedfunc.Stack{h.wf, h.ud} {
		if _, err := s.CallSpecContext(ctx, simlat.Free(), spec, 0); err != nil {
			return nil, err
		}
		task := simlat.NewVirtualTask()
		rec := simlat.NewRecorder()
		task.SetRecorder(rec)
		tr := obs.Trace(task, "stack.call",
			obs.Attr{Key: "arch", Value: s.Arch().Label()},
			obs.Attr{Key: "fn", Value: spec.Name})
		_, callErr := s.CallSpecContext(ctx, task, spec, 0)
		root := tr.Finish()
		if callErr != nil {
			return nil, callErr
		}
		recBd := recorderBreakdown(s.Arch().String(), rec)
		traceBd := traceBreakdown(s.Arch().String(), root)
		out = append(out, SpanFig6{
			Arch:      s.Arch().String(),
			ArchLabel: s.Arch().Label(),
			Tree:      obs.Render(root),
			Data:      obs.SnapshotSpan(root),
			Trace:     traceBd,
			Recorder:  recBd,
			Match:     breakdownsEqual(traceBd, recBd),
		})
	}
	return out, nil
}

// recorderBreakdown converts a Recorder into a Breakdown (the E3 shape).
func recorderBreakdown(arch string, rec *simlat.Recorder) *Breakdown {
	out := &Breakdown{Arch: arch, Total: rec.Total()}
	for _, st := range rec.Steps() {
		out.Steps = append(out.Steps, BreakdownStep{
			Name: st.Name, Total: st.Total, Percent: percentOf(st.Total, rec.Total()),
		})
	}
	return out
}

// traceBreakdown aggregates a span tree's step attributions into a
// Breakdown.
func traceBreakdown(arch string, root *obs.Span) *Breakdown {
	totals := root.StepTotals()
	var sum time.Duration
	for _, st := range totals {
		sum += st.Total
	}
	out := &Breakdown{Arch: arch, Total: sum}
	for _, st := range totals {
		out.Steps = append(out.Steps, BreakdownStep{
			Name: st.Name, Total: st.Total, Percent: percentOf(st.Total, sum),
		})
	}
	return out
}

func percentOf(part, whole time.Duration) int {
	if whole <= 0 {
		return 0
	}
	return int(float64(part)/float64(whole)*100 + 0.5)
}

// breakdownsEqual compares per-step totals (order-insensitive) and the
// grand totals.
func breakdownsEqual(a, b *Breakdown) bool {
	if a.Total != b.Total || len(a.Steps) != len(b.Steps) {
		return false
	}
	bt := make(map[string]time.Duration, len(b.Steps))
	for _, st := range b.Steps {
		bt[st.Name] = st.Total
	}
	for _, st := range a.Steps {
		if got, ok := bt[st.Name]; !ok || got != st.Total {
			return false
		}
	}
	return true
}

// RenderSpanFig6 prints one E10 result: the span tree, the trace-derived
// breakdown, and the cross-check verdict.
func RenderSpanFig6(r SpanFig6) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — span tree of one hot GetNoSuppComp call:\n", r.Arch)
	for _, line := range strings.Split(strings.TrimRight(r.Tree, "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
	b.WriteString("\n")
	b.WriteString(RenderBreakdown(r.Trace))
	verdict := "MATCH"
	if !r.Match {
		verdict = "MISMATCH"
	}
	fmt.Fprintf(&b, "  trace-derived vs Recorder-derived step totals: %s (total %s vs %s)\n",
		verdict, fmtPaperMS(r.Trace.Total), fmtPaperMS(r.Recorder.Total))
	return b.String()
}
