package benchharn

import (
	"context"
	"strings"
	"testing"

	"fedwf/internal/simlat"
)

func newHarness(t *testing.T) *Harness {
	t.Helper()
	h, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestCapabilitiesMatrix(t *testing.T) {
	h := newHarness(t)
	rows, err := h.Capabilities(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.WfMSRuns {
			t.Errorf("%s: WfMS approach must support every case", r.Function)
		}
		wantUDTF := r.Case != "dependent: cyclic"
		if r.UDTFRuns != wantUDTF {
			t.Errorf("%s (%s): UDTF support = %v, want %v", r.Function, r.Case, r.UDTFRuns, wantUDTF)
		}
	}
	out := RenderCapabilities(rows)
	for _, want := range []string{"trivial", "dependent: cyclic", "loop construct with sub-workflow", "yes", "no"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	h := newHarness(t)
	rows, err := h.Fig5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Fig5Row, len(rows))
	for _, r := range rows {
		byName[r.Function] = r
		if r.UDTF == 0 {
			if r.Function != "AllCompNames" {
				t.Errorf("%s unexpectedly unsupported by UDTF", r.Function)
			}
			continue
		}
		// The WfMS approach is slower everywhere. Fixed-overhead-dominated
		// (single-function) and helper-heavy mappings run up to ~5x; the
		// paper's "up to three times" headline is anchored at the
		// multi-function workloads (see EXPERIMENTS.md).
		if r.Ratio <= 1.0 || r.Ratio > 5.5 {
			t.Errorf("%s: ratio = %.2f out of band", r.Function, r.Ratio)
		}
	}
	// The headline function's ratio is ~3.
	if r := byName["GetNoSuppComp"]; r.Ratio < 2.7 || r.Ratio > 3.3 {
		t.Errorf("GetNoSuppComp ratio = %.2f, want ~3", r.Ratio)
	}
	// Processing times rise less steeply for UDTF: compare the sequential
	// family GibKompNr (1 fn) -> GetSuppQual (2 fns) -> GetNoSuppComp (3
	// fns), whose workflow realisations serialise their activities.
	seq := []string{"GibKompNr", "GetSuppQual", "GetNoSuppComp"}
	for i := 1; i < len(seq); i++ {
		wfSlope := byName[seq[i]].WfMS - byName[seq[i-1]].WfMS
		udSlope := byName[seq[i]].UDTF - byName[seq[i-1]].UDTF
		if wfSlope <= udSlope {
			t.Errorf("%s->%s: WfMS slope (%v) should exceed UDTF slope (%v)",
				seq[i-1], seq[i], wfSlope, udSlope)
		}
	}
	out := RenderFig5(rows)
	if !strings.Contains(out, "not supp.") || !strings.Contains(out, "BuySuppComp") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFig6Breakdowns(t *testing.T) {
	h := newHarness(t)
	wf, ud, err := h.Fig6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Overall ratio ~3.
	ratio := float64(wf.Total) / float64(ud.Total)
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("total ratio = %.2f", ratio)
	}
	pct := func(b *Breakdown, name string) int {
		for _, s := range b.Steps {
			if s.Name == name {
				return s.Percent
			}
		}
		return -1
	}
	// WfMS approach portions (paper: 9/11/3/10/51/9/5/0/2).
	checks := []struct {
		b      *Breakdown
		step   string
		lo, hi int
	}{
		{wf, simlat.StepStartUDTF, 7, 11},
		{wf, simlat.StepProcessUDTF, 9, 13},
		{wf, simlat.StepRMICall, 1, 5},
		{wf, simlat.StepStartWorkflow, 8, 12},
		{wf, simlat.StepActivities, 47, 55},
		{wf, simlat.StepWorkflowEngine, 7, 11},
		{wf, simlat.StepController, 3, 7},
		{wf, simlat.StepRMIReturn, 0, 1},
		{wf, simlat.StepFinishUDTF, 1, 4},
		// UDTF approach portions (paper: 11/28/24/0/6/21/1/9).
		{ud, simlat.StepStartIUDTF, 9, 13},
		{ud, simlat.StepPrepareAUDTF, 26, 30},
		{ud, simlat.StepRMICall, 22, 26},
		{ud, simlat.StepControllerRuns, 0, 2},
		{ud, simlat.StepLocalFunctions, 4, 8},
		{ud, simlat.StepFinishAUDTF, 19, 23},
		{ud, simlat.StepRMIReturn, 0, 2},
		{ud, simlat.StepFinishIUDTF, 7, 11},
	}
	for _, c := range checks {
		got := pct(c.b, c.step)
		if got < c.lo || got > c.hi {
			t.Errorf("%s: %q = %d%%, want %d..%d%%", c.b.Arch, c.step, got, c.lo, c.hi)
		}
	}
	out := RenderBreakdown(wf) + RenderBreakdown(ud)
	if !strings.Contains(out, "Process activities") {
		t.Errorf("render:\n%s", out)
	}
}

func TestBootStatesOrdering(t *testing.T) {
	h := newHarness(t)
	rows, err := h.BootStates(context.Background(), "GetSuppQual")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !(r.Cold > r.Warm && r.Warm > r.Hot) {
			t.Errorf("%s: cold=%v warm=%v hot=%v not ordered", r.Arch, r.Cold, r.Warm, r.Hot)
		}
	}
	if _, err := h.BootStates(context.Background(), "NoSuchFn"); err == nil {
		t.Error("unknown function accepted")
	}
	out := RenderBootStates(rows)
	if !strings.Contains(out, "Cold") {
		t.Errorf("render:\n%s", out)
	}
}

func TestParallelVsSequentialShape(t *testing.T) {
	h := newHarness(t)
	rows, err := h.ParallelVsSequential(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		isWf := strings.Contains(r.Arch, "WfMS")
		parWins := r.Parallel < r.Sequential
		if isWf && !parWins {
			t.Errorf("WfMS: parallel should win (%v vs %v)", r.Parallel, r.Sequential)
		}
		if !isWf && parWins {
			t.Errorf("UDTF: sequential should win (%v vs %v)", r.Parallel, r.Sequential)
		}
	}
	out := RenderParallel(rows)
	if !strings.Contains(out, "parallel") || !strings.Contains(out, "sequential") {
		t.Errorf("render:\n%s", out)
	}
}

func TestLoopScalingLinearity(t *testing.T) {
	h := newHarness(t)
	rows, err := h.LoopScaling(context.Background(), []int{2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Linear: equal increments per doubling of the increment size.
	d1 := rows[1].Elapsed - rows[0].Elapsed // +2 calls
	d2 := rows[2].Elapsed - rows[1].Elapsed // +4 calls
	d3 := rows[3].Elapsed - rows[2].Elapsed // +8 calls
	if d2 != 2*d1 || d3 != 2*d2 {
		t.Errorf("not linear: d1=%v d2=%v d3=%v", d1, d2, d3)
	}
	if _, err := h.LoopScaling(context.Background(), []int{0}); err == nil {
		t.Error("invalid count accepted")
	}
	if _, err := h.LoopScaling(context.Background(), []int{10_000}); err == nil {
		t.Error("excessive count accepted")
	}
	out := RenderLoop(rows)
	if !strings.Contains(out, "Per call") {
		t.Errorf("render:\n%s", out)
	}
}

func TestControllerAblationShape(t *testing.T) {
	h := newHarness(t)
	rows, with, without, err := h.ControllerAblation(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].SavingPct < 5 || rows[0].SavingPct > 11 {
		t.Errorf("WfMS saving = %.1f%%, want ~8%%", rows[0].SavingPct)
	}
	if rows[1].SavingPct < 20 || rows[1].SavingPct > 30 {
		t.Errorf("UDTF saving = %.1f%%, want ~25%%", rows[1].SavingPct)
	}
	if with < 2.7 || with > 3.3 {
		t.Errorf("ratio with controller = %.2f", with)
	}
	if without < 3.3 || without > 4.1 {
		t.Errorf("ratio without controller = %.2f", without)
	}
	out := RenderAblation(rows, with, without)
	if !strings.Contains(out, "->") {
		t.Errorf("render:\n%s", out)
	}
}

func TestBatchScalingLinearAndOrdered(t *testing.T) {
	h := newHarness(t)
	rows, err := h.BatchScaling(context.Background(), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WfMS <= r.UDTF {
			t.Errorf("calls=%d: WfMS (%v) should exceed UDTF (%v)", r.Calls, r.WfMS, r.UDTF)
		}
	}
	// Per-call growth is linear on both stacks.
	dw1 := rows[1].WfMS - rows[0].WfMS
	dw2 := rows[2].WfMS - rows[1].WfMS
	if dw2 != 2*dw1 {
		t.Errorf("WfMS batch growth not linear: %v then %v", dw1, dw2)
	}
	du1 := rows[1].UDTF - rows[0].UDTF
	du2 := rows[2].UDTF - rows[1].UDTF
	if du2 != 2*du1 {
		t.Errorf("UDTF batch growth not linear: %v then %v", du1, du2)
	}
	if _, err := h.BatchScaling(context.Background(), []int{0}); err == nil {
		t.Error("invalid batch size accepted")
	}
	out := RenderBatch(rows)
	if !strings.Contains(out, "Ratio") {
		t.Errorf("render:\n%s", out)
	}
}

func TestHarnessAccessors(t *testing.T) {
	h := newHarness(t)
	if h.Profile() == (simlat.Profile{}) {
		t.Error("profile empty")
	}
	if h.WfMSStack() == nil || h.UDTFStack() == nil {
		t.Error("stack accessors nil")
	}
}

func TestParallelLateralSweep(t *testing.T) {
	h := newHarness(t)
	rows, err := h.ParallelLateral(context.Background(), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Two functions x two architectures x three DOPs.
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for i := 0; i < len(rows); i += 3 {
		group := rows[i : i+3]
		if group[0].DOP != 1 || group[0].Speedup != 1.0 {
			t.Fatalf("group %d lacks sequential baseline: %+v", i/3, group[0])
		}
		for j := 1; j < len(group); j++ {
			if group[j].Elapsed >= group[j-1].Elapsed {
				t.Errorf("%s/%v: DOP %d (%v) not faster than DOP %d (%v)",
					group[j].Function, group[j].Arch, group[j].DOP, group[j].Elapsed,
					group[j-1].DOP, group[j-1].Elapsed)
			}
		}
		// Acceptance: wall/virtual speedup at DOP=4 clears 2x; the balanced
		// 16-row workload actually parallelises almost perfectly.
		if last := group[len(group)-1]; last.Speedup <= 2 {
			t.Errorf("%s/%v: speedup at DOP=%d = %.2f, want > 2",
				last.Function, last.Arch, last.DOP, last.Speedup)
		}
		// The static round-robin partitioning keeps the cache counters
		// deterministic: 8 distinct keys over 16 rows, no coalescing.
		for _, r := range group {
			if r.Stats.Misses != 8 || r.Stats.Hits != 8 || r.Stats.Coalesced != 0 {
				t.Errorf("%s/%v DOP %d: stats = %+v", r.Function, r.Arch, r.DOP, r.Stats)
			}
		}
	}
	if _, err := h.ParallelLateral(context.Background(), []int{0}); err == nil {
		t.Error("invalid dop accepted")
	}
	out := RenderDOP(rows)
	if !strings.Contains(out, "Coalesced") || !strings.Contains(out, "GetSuppGrade") {
		t.Errorf("render:\n%s", out)
	}
}
