package exec

import (
	"fmt"
	"io"

	"fedwf/internal/catalog"
	"fedwf/internal/exec/batcher"
	"fedwf/internal/obs"
	"fedwf/internal/obs/stats"
	"fedwf/internal/types"
)

// This file implements the set-oriented lateral path: Apply, LeftApply,
// and ParallelApply accumulate outer rows into chunks under a
// batcher.Policy and flush each chunk as ONE set-oriented invocation of
// the right-hand FuncScan, amortizing the per-call federation overheads
// (UDTF entry, RPC round trip, workflow instance start) across the chunk.
//
// The batched path engages only when the right side is a bare FuncScan
// (possibly behind Analyzed instrumentation) — the only operator whose
// whole evaluation is a single function call that can be vectorized.
// Any other right-hand shape falls back to the per-row loop.

// asFuncScan unwraps instrumentation and returns the right side's
// FuncScan, or nil when the subtree has any other shape.
func asFuncScan(op Operator) *FuncScan {
	for {
		switch o := op.(type) {
		case *FuncScan:
			return o
		case *Analyzed:
			op = o.Child
		default:
			return nil
		}
	}
}

// acquire classifies one key for the batch path and reserves it on a
// miss: the caller that receives CacheMiss owns the returned entry and
// MUST publish a result (close done) exactly once. Hits return a
// completed entry; coalesced lookups return an entry owned by another
// in-flight caller — or by an earlier duplicate row in the same chunk,
// which is how duplicate keys inside a batch collapse to one wire row.
func (fc *FuncCache) acquire(name string, args []types.Value) (*funcCall, CacheOutcome) {
	key := fc.key(name, args)
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if c, ok := fc.entries[key]; ok {
		select {
		case <-c.done:
			fc.hits++
			return c, CacheHit
		default:
			fc.coalesced++
			return c, CacheCoalesced
		}
	}
	c := &funcCall{done: make(chan struct{})}
	fc.entries[key] = c
	fc.misses++
	return c, CacheMiss
}

// invokeBatch materialises the function result for every binding row
// using at most one set-oriented invocation. Per-row cache hits are
// extracted before the wire batch forms; only misses travel. Returns one
// table per binding row; any per-row failure fails the whole chunk,
// matching the RPC layer's batch-as-a-unit error semantics.
func (f *FuncScan) invokeBatch(ctx *Ctx, binds []types.Row) (out []*types.Table, err error) {
	n := len(binds)
	argRows := make([][]types.Value, n)
	for i, b := range binds {
		args := make([]types.Value, len(f.Args))
		for j, a := range f.Args {
			v, err := a.Eval(b)
			if err != nil {
				return nil, fmt.Errorf("exec: argument %d of %s: %w", j+1, f.Fn.Name(), err)
			}
			args[j] = v
		}
		argRows[i] = args
	}
	if err := ctx.check(); err != nil {
		return nil, err
	}
	sp := obs.StartSpan(ctx.Task, "exec.func.batch",
		obs.Attr{Key: "fn", Value: f.Fn.Name()},
		obs.Attr{Key: "batch_size", Value: fmt.Sprint(n)})
	defer func() {
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End(ctx.Task)
	}()
	if ctx.FuncCache == nil {
		sp.SetAttr("wire_rows", fmt.Sprint(n))
		return catalog.InvokeFuncBatch(ctx.Context, f.Fn, ctx.Runner, ctx.Task, argRows)
	}

	fc := ctx.FuncCache
	calls := make([]*funcCall, n)
	var wireRows [][]types.Value
	var wireCalls []*funcCall
	for i, args := range argRows {
		c, outcome := fc.acquire(f.Fn.Name(), args)
		calls[i] = c
		if f.Stats != nil {
			switch outcome {
			case CacheHit:
				f.Stats.CacheHits.Add(1)
			case CacheMiss:
				f.Stats.CacheMisses.Add(1)
			case CacheCoalesced:
				f.Stats.CacheCoalesced.Add(1)
			}
		}
		if outcome == CacheMiss {
			wireRows = append(wireRows, args)
			wireCalls = append(wireCalls, c)
		}
	}
	sp.SetAttr("wire_rows", fmt.Sprint(len(wireRows)))
	if len(wireRows) > 0 {
		tabs, werr := catalog.InvokeFuncBatch(ctx.Context, f.Fn, ctx.Runner, ctx.Task, wireRows)
		if werr != nil {
			// Publish the failure on every reserved entry (errors are
			// cached like the per-row path) before failing the chunk.
			for _, c := range wireCalls {
				c.err = werr
				close(c.done)
			}
			return nil, werr
		}
		for j, c := range wireCalls {
			c.res = tabs[j]
			close(c.done)
		}
	}
	out = make([]*types.Table, n)
	for i, c := range calls {
		<-c.done // hits and own misses are already closed; coalesced may wait
		if c.err != nil {
			return nil, c.err
		}
		out[i] = c.res
	}
	return out, nil
}

// padNullRow emits lr padded with NULLs for the right schema — the
// unmatched/degraded outer-join shape.
func padNullRow(lr types.Row, rightSch types.Schema) types.Row {
	out := make(types.Row, 0, len(lr)+len(rightSch))
	out = append(out, lr...)
	for range rightSch {
		out = append(out, types.Null)
	}
	return out
}

// joinLateralRows combines one outer row with its right-side result
// table, applying the On filter and, in outer mode, NULL padding when no
// row matches. Shared by every batched lateral operator.
func joinLateralRows(lr types.Row, tab *types.Table, on Expr, outer bool, rightSch types.Schema) ([]types.Row, error) {
	var out []types.Row
	matched := false
	for _, rr := range tab.Rows {
		row := make(types.Row, 0, len(lr)+len(rr))
		row = append(row, lr...)
		row = append(row, rr...)
		if on != nil {
			v, err := on.Eval(row)
			if err != nil {
				return nil, err
			}
			ok, err := Truthy(v)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		matched = true
		out = append(out, row)
	}
	if outer && !matched {
		out = append(out, padNullRow(lr, rightSch))
	}
	return out, nil
}

// batchRun is the shared iteration state of a batched Apply/LeftApply:
// the accumulating chunk's trigger bookkeeping and the flushed output
// buffer Next drains.
type batchRun struct {
	fs       *FuncScan
	bat      *batcher.Batcher
	slots    int // policy row capacity, for the fill-ratio statistic
	buf      []types.Row
	bufPos   int
	leftDone bool
}

// newBatchRun returns the batched iteration state when the policy is
// enabled and the right side is a batchable FuncScan, else nil (per-row
// path).
func newBatchRun(pol batcher.Policy, right Operator) *batchRun {
	if !pol.Enabled() {
		return nil
	}
	fs := asFuncScan(right)
	if fs == nil {
		return nil
	}
	return &batchRun{fs: fs, bat: batcher.New(pol), slots: pol.Count}
}

// noteChunk records a flushed chunk's fill against the statement's
// counters (sum(rows)/sum(slots) aggregates to the batch fill ratio).
func (b *batchRun) noteChunk(ctx *Ctx, rows int) {
	stats.FromContext(ctx.Context).AddBatch(rows, b.slots)
}

// next returns the next buffered row, or false when the buffer is dry.
func (b *batchRun) next() (types.Row, bool) {
	if b.bufPos < len(b.buf) {
		r := b.buf[b.bufPos]
		b.bufPos++
		return r, true
	}
	return nil, false
}

// fill drains left rows into the next chunk until a policy trigger fires
// or the left side is exhausted (final flush). The byte trigger is fed an
// estimate over the outer row, which carries the argument values.
func (b *batchRun) fill(ctx *Ctx, left Operator) ([]types.Row, error) {
	b.buf = b.buf[:0]
	b.bufPos = 0
	var chunk []types.Row
	for {
		lr, err := left.Next()
		if err == io.EOF {
			b.leftDone = true
			b.bat.Flush()
			return chunk, nil
		}
		if err != nil {
			return nil, err
		}
		if err := ctx.check(); err != nil {
			return nil, err
		}
		chunk = append(chunk, lr)
		if b.bat.Add(batcher.RowBytes(lr), ctx.Task.Elapsed()) != batcher.TriggerNone {
			b.bat.Flush()
			return chunk, nil
		}
	}
}

// childBindRows builds the per-row child bindings (enclosing bind ++
// outer row) for a chunk.
func childBindRows(bind types.Row, chunk []types.Row) []types.Row {
	out := make([]types.Row, len(chunk))
	for i, lr := range chunk {
		cb := make(types.Row, 0, len(bind)+len(lr))
		cb = append(cb, bind...)
		cb = append(cb, lr...)
		out[i] = cb
	}
	return out
}

// nextBatched is the batched Next loop of Apply: inner lateral join, so a
// chunk failure fails the statement like the per-row path would.
func (a *Apply) nextBatched() (types.Row, error) {
	b := a.batch
	for {
		if r, ok := b.next(); ok {
			return r, nil
		}
		if b.leftDone {
			return nil, io.EOF
		}
		chunk, err := b.fill(a.ctx, a.Left)
		if err != nil {
			return nil, err
		}
		if len(chunk) == 0 {
			continue
		}
		b.noteChunk(a.ctx, len(chunk))
		tabs, err := b.fs.invokeBatch(a.ctx, childBindRows(a.bind, chunk))
		if err != nil {
			return nil, err
		}
		for i, lr := range chunk {
			rows, err := joinLateralRows(lr, tabs[i], nil, false, a.Right.Schema())
			if err != nil {
				return nil, err
			}
			b.buf = append(b.buf, rows...)
		}
	}
}

// nextBatched is the batched Next loop of LeftApply. The chunk is the
// resilience unit: a degradable failure of the set-oriented call NULL-pads
// every outer row of the chunk (per-row execution would have padded them
// one by one as each row's call hit the same open breaker).
func (a *LeftApply) nextBatched() (types.Row, error) {
	b := a.batch
	for {
		if r, ok := b.next(); ok {
			return r, nil
		}
		if b.leftDone {
			return nil, io.EOF
		}
		chunk, err := b.fill(a.ctx, a.Left)
		if err != nil {
			return nil, err
		}
		if len(chunk) == 0 {
			continue
		}
		b.noteChunk(a.ctx, len(chunk))
		tabs, err := b.fs.invokeBatch(a.ctx, childBindRows(a.bind, chunk))
		if err != nil {
			if degrade(a.ctx, true, err) {
				for _, lr := range chunk {
					b.buf = append(b.buf, padNullRow(lr, a.Right.Schema()))
				}
				continue
			}
			return nil, err
		}
		for i, lr := range chunk {
			rows, err := joinLateralRows(lr, tabs[i], a.On, true, a.Right.Schema())
			if err != nil {
				return nil, err
			}
			b.buf = append(b.buf, rows...)
		}
	}
}
