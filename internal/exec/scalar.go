package exec

import (
	"fmt"
	"math"
	"strings"

	"fedwf/internal/types"
)

// ScalarFunc is a built-in scalar function implementation.
type ScalarFunc func(args []types.Value) (types.Value, error)

// LookupScalar resolves a built-in scalar function by name
// (case-insensitive) and validates its arity. The cast-style functions
// INT/INTEGER/BIGINT/SMALLINT/DOUBLE/VARCHAR/CHAR mirror DB2's casting
// functions used by the paper (e.g. BIGINT(GN.Number)).
func LookupScalar(name string, arity int) (ScalarFunc, error) {
	spec, ok := scalarFuncs[strings.ToUpper(name)]
	if !ok {
		return nil, fmt.Errorf("exec: unknown function %s", name)
	}
	if arity < spec.minArgs || (spec.maxArgs >= 0 && arity > spec.maxArgs) {
		return nil, fmt.Errorf("exec: function %s called with %d arguments", name, arity)
	}
	return spec.fn, nil
}

type scalarSpec struct {
	minArgs, maxArgs int // maxArgs < 0 means variadic
	fn               ScalarFunc
}

func castFunc(t types.Type) ScalarFunc {
	return func(args []types.Value) (types.Value, error) { return types.Cast(args[0], t) }
}

var scalarFuncs = map[string]scalarSpec{
	"SMALLINT": {1, 1, castFunc(types.SmallInt)},
	"INT":      {1, 1, castFunc(types.Integer)},
	"INTEGER":  {1, 1, castFunc(types.Integer)},
	"BIGINT":   {1, 1, castFunc(types.BigInt)},
	"DOUBLE":   {1, 1, castFunc(types.Double)},
	"VARCHAR":  {1, 1, castFunc(types.VarChar)},
	"CHAR":     {1, 1, castFunc(types.VarChar)},

	"UPPER": {1, 1, stringFunc(strings.ToUpper)},
	"LOWER": {1, 1, stringFunc(strings.ToLower)},
	"TRIM":  {1, 1, stringFunc(strings.TrimSpace)},
	"LTRIM": {1, 1, stringFunc(func(s string) string { return strings.TrimLeft(s, " ") })},
	"RTRIM": {1, 1, stringFunc(func(s string) string { return strings.TrimRight(s, " ") })},

	"LENGTH": {1, 1, func(args []types.Value) (types.Value, error) {
		if args[0].IsNull() {
			return types.Null, nil
		}
		s, err := args[0].AsString()
		if err != nil {
			return types.Null, err
		}
		return types.NewInt(int64(len(s))), nil
	}},

	"SUBSTR": {2, 3, func(args []types.Value) (types.Value, error) {
		if args[0].IsNull() || args[1].IsNull() {
			return types.Null, nil
		}
		s, err := args[0].AsString()
		if err != nil {
			return types.Null, err
		}
		start, err := args[1].AsInt()
		if err != nil {
			return types.Null, err
		}
		// SQL SUBSTR is 1-based.
		if start < 1 {
			start = 1
		}
		if start > int64(len(s)) {
			return types.NewString(""), nil
		}
		rest := s[start-1:]
		if len(args) == 3 {
			if args[2].IsNull() {
				return types.Null, nil
			}
			n, err := args[2].AsInt()
			if err != nil {
				return types.Null, err
			}
			if n < 0 {
				return types.Null, fmt.Errorf("exec: SUBSTR length must be non-negative")
			}
			if n < int64(len(rest)) {
				rest = rest[:n]
			}
		}
		return types.NewString(rest), nil
	}},

	"CONCAT": {2, -1, func(args []types.Value) (types.Value, error) {
		out := args[0]
		var err error
		for _, a := range args[1:] {
			out, err = types.Concat(out, a)
			if err != nil {
				return types.Null, err
			}
		}
		return out, nil
	}},

	"ABS": {1, 1, func(args []types.Value) (types.Value, error) {
		v := args[0]
		switch v.Kind() {
		case types.KindNull:
			return types.Null, nil
		case types.KindInt:
			if v.Int() < 0 {
				return types.Neg(v)
			}
			return v, nil
		case types.KindFloat:
			return types.NewFloat(math.Abs(v.Float())), nil
		default:
			return types.Null, fmt.Errorf("exec: ABS requires a numeric argument")
		}
	}},

	"MOD": {2, 2, func(args []types.Value) (types.Value, error) {
		return types.Mod(args[0], args[1])
	}},

	"ROUND": {1, 2, func(args []types.Value) (types.Value, error) {
		if args[0].IsNull() {
			return types.Null, nil
		}
		f, err := args[0].AsFloat()
		if err != nil {
			return types.Null, err
		}
		digits := int64(0)
		if len(args) == 2 {
			if args[1].IsNull() {
				return types.Null, nil
			}
			if digits, err = args[1].AsInt(); err != nil {
				return types.Null, err
			}
		}
		scale := math.Pow(10, float64(digits))
		return types.NewFloat(math.Round(f*scale) / scale), nil
	}},

	"FLOOR": {1, 1, floatFunc(math.Floor)},
	"CEIL":  {1, 1, floatFunc(math.Ceil)},
	"SQRT": {1, 1, func(args []types.Value) (types.Value, error) {
		if args[0].IsNull() {
			return types.Null, nil
		}
		f, err := args[0].AsFloat()
		if err != nil {
			return types.Null, err
		}
		if f < 0 {
			return types.Null, fmt.Errorf("exec: SQRT of negative value")
		}
		return types.NewFloat(math.Sqrt(f)), nil
	}},

	"COALESCE": {1, -1, func(args []types.Value) (types.Value, error) {
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return types.Null, nil
	}},

	"NULLIF": {2, 2, func(args []types.Value) (types.Value, error) {
		c, err := types.Compare(args[0], args[1])
		if err == types.ErrNullCompare {
			return args[0], nil
		}
		if err != nil {
			return types.Null, err
		}
		if c == 0 {
			return types.Null, nil
		}
		return args[0], nil
	}},

	"LEAST":    {1, -1, extremeFunc(-1)},
	"GREATEST": {1, -1, extremeFunc(1)},
}

func stringFunc(f func(string) string) ScalarFunc {
	return func(args []types.Value) (types.Value, error) {
		if args[0].IsNull() {
			return types.Null, nil
		}
		s, err := args[0].AsString()
		if err != nil {
			return types.Null, err
		}
		return types.NewString(f(s)), nil
	}
}

func floatFunc(f func(float64) float64) ScalarFunc {
	return func(args []types.Value) (types.Value, error) {
		if args[0].IsNull() {
			return types.Null, nil
		}
		x, err := args[0].AsFloat()
		if err != nil {
			return types.Null, err
		}
		return types.NewFloat(f(x)), nil
	}
}

// extremeFunc returns LEAST (sign=-1) or GREATEST (sign=1); NULL inputs
// yield NULL, per SQL.
func extremeFunc(sign int) ScalarFunc {
	return func(args []types.Value) (types.Value, error) {
		best := args[0]
		if best.IsNull() {
			return types.Null, nil
		}
		for _, a := range args[1:] {
			if a.IsNull() {
				return types.Null, nil
			}
			c, err := types.Compare(a, best)
			if err != nil {
				return types.Null, err
			}
			if c*sign > 0 {
				best = a
			}
		}
		return best, nil
	}
}

// IsAggregateName reports whether the (case-insensitive) name denotes a
// built-in aggregate function.
func IsAggregateName(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}
