package exec

import (
	"testing"

	"fedwf/internal/types"
)

func evalOK(t *testing.T, e Expr, row types.Row) types.Value {
	t.Helper()
	v, err := e.Eval(row)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestConstAndCol(t *testing.T) {
	row := types.Row{types.NewInt(1), types.NewString("x")}
	if v := evalOK(t, Const{V: types.NewInt(7)}, row); v.Int() != 7 {
		t.Errorf("const = %v", v)
	}
	if v := evalOK(t, Col{Idx: 1, Name: "s"}, row); v.Str() != "x" {
		t.Errorf("col = %v", v)
	}
	if _, err := (Col{Idx: 5, Name: "out"}).Eval(row); err == nil {
		t.Error("out-of-range column read succeeded")
	}
	if (Col{Idx: 2, Name: "c"}).String() != "c#2" {
		t.Error("Col.String format")
	}
}

func TestUnaryExpr(t *testing.T) {
	if v := evalOK(t, Unary{Op: "-", X: Const{V: types.NewInt(3)}}, nil); v.Int() != -3 {
		t.Errorf("neg = %v", v)
	}
	if v := evalOK(t, Unary{Op: "NOT", X: Const{V: types.NewBool(true)}}, nil); v.Bool() {
		t.Errorf("not = %v", v)
	}
	if v := evalOK(t, Unary{Op: "NOT", X: Const{V: types.Null}}, nil); !v.IsNull() {
		t.Errorf("NOT NULL = %v", v)
	}
	if _, err := (Unary{Op: "??", X: Const{V: types.NewInt(1)}}).Eval(nil); err == nil {
		t.Error("unknown unary op accepted")
	}
	if _, err := (Unary{Op: "NOT", X: Const{V: types.NewString("zz")}}).Eval(nil); err == nil {
		t.Error("NOT on non-boolean accepted")
	}
}

func TestBinArithmeticAndComparison(t *testing.T) {
	two, three := Const{V: types.NewInt(2)}, Const{V: types.NewInt(3)}
	cases := []struct {
		op   string
		want int64
	}{{"+", 5}, {"-", -1}, {"*", 6}, {"/", 0}, {"%", 2}}
	for _, c := range cases {
		v := evalOK(t, Bin{Op: c.op, L: two, R: three}, nil)
		if v.Int() != c.want {
			t.Errorf("2 %s 3 = %v, want %d", c.op, v, c.want)
		}
	}
	cmp := []struct {
		op   string
		want bool
	}{{"=", false}, {"<>", true}, {"<", true}, {"<=", true}, {">", false}, {">=", false}}
	for _, c := range cmp {
		v := evalOK(t, Bin{Op: c.op, L: two, R: three}, nil)
		if v.Bool() != c.want {
			t.Errorf("2 %s 3 = %v, want %v", c.op, v, c.want)
		}
	}
	// NULL comparisons are UNKNOWN (NULL).
	v := evalOK(t, Bin{Op: "=", L: two, R: Const{V: types.Null}}, nil)
	if !v.IsNull() {
		t.Errorf("2 = NULL -> %v", v)
	}
	v = evalOK(t, Bin{Op: "||", L: Const{V: types.NewString("a")}, R: Const{V: types.NewString("b")}}, nil)
	if v.Str() != "ab" {
		t.Errorf("concat = %v", v)
	}
	if _, err := (Bin{Op: "??", L: two, R: three}).Eval(nil); err == nil {
		t.Error("unknown operator accepted")
	}
	if _, err := (Bin{Op: "=", L: two, R: Const{V: types.NewString("x")}}).Eval(nil); err == nil {
		t.Error("incomparable operands accepted")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	T := Const{V: types.NewBool(true)}
	F := Const{V: types.NewBool(false)}
	N := Const{V: types.Null}
	type tc struct {
		op   string
		l, r Expr
		want string // "T", "F", "N"
	}
	cases := []tc{
		{"AND", T, T, "T"}, {"AND", T, F, "F"}, {"AND", F, N, "F"}, {"AND", N, F, "F"},
		{"AND", T, N, "N"}, {"AND", N, N, "N"},
		{"OR", F, F, "F"}, {"OR", T, N, "T"}, {"OR", N, T, "T"},
		{"OR", F, N, "N"}, {"OR", N, N, "N"},
	}
	for _, c := range cases {
		v := evalOK(t, Bin{Op: c.op, L: c.l, R: c.r}, nil)
		got := "N"
		if !v.IsNull() {
			if v.Bool() {
				got = "T"
			} else {
				got = "F"
			}
		}
		if got != c.want {
			t.Errorf("%s %s %s = %s, want %s", c.l, c.op, c.r, got, c.want)
		}
	}
	// Short-circuit: F AND err-expr must not evaluate the right side.
	bad := Col{Idx: 99, Name: "boom"}
	if v := evalOK(t, Bin{Op: "AND", L: F, R: bad}, types.Row{}); v.Bool() {
		t.Error("short-circuit AND broken")
	}
	if v := evalOK(t, Bin{Op: "OR", L: T, R: bad}, types.Row{}); !v.Bool() {
		t.Error("short-circuit OR broken")
	}
	// Non-boolean operands error out.
	if _, err := (Bin{Op: "AND", L: Const{V: types.NewString("x")}, R: T}).Eval(nil); err == nil {
		t.Error("AND on string accepted")
	}
	if _, err := (Bin{Op: "AND", L: T, R: Const{V: types.NewString("x")}}).Eval(nil); err == nil {
		t.Error("AND on string accepted (right)")
	}
}

func TestCastIsNullBetween(t *testing.T) {
	v := evalOK(t, Cast{X: Const{V: types.NewString("12")}, Type: types.Integer}, nil)
	if v.Int() != 12 {
		t.Errorf("cast = %v", v)
	}
	if v := evalOK(t, IsNull{X: Const{V: types.Null}}, nil); !v.Bool() {
		t.Error("IS NULL failed")
	}
	if v := evalOK(t, IsNull{X: Const{V: types.NewInt(1)}, Not: true}, nil); !v.Bool() {
		t.Error("IS NOT NULL failed")
	}
	one, five, three := Const{V: types.NewInt(1)}, Const{V: types.NewInt(5)}, Const{V: types.NewInt(3)}
	if v := evalOK(t, Between{X: three, Lo: one, Hi: five}, nil); !v.Bool() {
		t.Error("BETWEEN failed")
	}
	if v := evalOK(t, Between{X: three, Lo: one, Hi: five, Not: true}, nil); v.Bool() {
		t.Error("NOT BETWEEN failed")
	}
	if v := evalOK(t, Between{X: three, Lo: Const{V: types.Null}, Hi: five}, nil); !v.IsNull() {
		t.Error("BETWEEN with NULL bound must be UNKNOWN")
	}
}

func TestInExpr(t *testing.T) {
	x := Const{V: types.NewInt(2)}
	list := []Expr{Const{V: types.NewInt(1)}, Const{V: types.NewInt(2)}}
	if v := evalOK(t, In{X: x, List: list}, nil); !v.Bool() {
		t.Error("IN failed")
	}
	if v := evalOK(t, In{X: x, List: list, Not: true}, nil); v.Bool() {
		t.Error("NOT IN failed")
	}
	// No match but a NULL element: UNKNOWN.
	listN := []Expr{Const{V: types.NewInt(9)}, Const{V: types.Null}}
	if v := evalOK(t, In{X: x, List: listN}, nil); !v.IsNull() {
		t.Error("IN with NULL element must be UNKNOWN when unmatched")
	}
	// Match despite NULL element: TRUE.
	listM := []Expr{Const{V: types.Null}, Const{V: types.NewInt(2)}}
	if v := evalOK(t, In{X: x, List: listM}, nil); !v.Bool() {
		t.Error("IN should match past NULL elements")
	}
}

func TestLikeExpr(t *testing.T) {
	cases := []struct {
		s, p  string
		match bool
	}{
		{"bolt", "bolt", true},
		{"bolt", "bo%", true},
		{"bolt", "%lt", true},
		{"bolt", "b_lt", true},
		{"bolt", "b_t", false},
		{"bolt", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%b%", true},
		{"abc", "a%c%", true},
		{"aXbXc", "a%b%c", true},
		{"mississippi", "%ss%pp%", true},
		{"mississippi", "%ss%xx%", false},
	}
	for _, c := range cases {
		v := evalOK(t, Like{X: Const{V: types.NewString(c.s)}, Pattern: Const{V: types.NewString(c.p)}}, nil)
		if v.Bool() != c.match {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.p, v.Bool(), c.match)
		}
	}
	if v := evalOK(t, Like{X: Const{V: types.Null}, Pattern: Const{V: types.NewString("%")}}, nil); !v.IsNull() {
		t.Error("NULL LIKE must be UNKNOWN")
	}
}

func TestCaseExpr(t *testing.T) {
	c := Case{
		Whens: []struct{ Cond, Result Expr }{
			{Const{V: types.NewBool(false)}, Const{V: types.NewString("a")}},
			{Const{V: types.Null}, Const{V: types.NewString("b")}}, // UNKNOWN arm skipped
			{Const{V: types.NewBool(true)}, Const{V: types.NewString("c")}},
		},
		Else: Const{V: types.NewString("e")},
	}
	if v := evalOK(t, c, nil); v.Str() != "c" {
		t.Errorf("case = %v", v)
	}
	noMatch := Case{Whens: []struct{ Cond, Result Expr }{
		{Const{V: types.NewBool(false)}, Const{V: types.NewString("a")}},
	}}
	if v := evalOK(t, noMatch, nil); !v.IsNull() {
		t.Errorf("case without else = %v", v)
	}
}

func TestScalarCallAndLookup(t *testing.T) {
	fn, err := LookupScalar("upper", 1)
	if err != nil {
		t.Fatal(err)
	}
	call := ScalarCall{Name: "UPPER", Fn: fn, Args: []Expr{Const{V: types.NewString("abc")}}}
	if v := evalOK(t, call, nil); v.Str() != "ABC" {
		t.Errorf("UPPER = %v", v)
	}
	if _, err := LookupScalar("nosuch", 1); err == nil {
		t.Error("unknown scalar accepted")
	}
	if _, err := LookupScalar("UPPER", 2); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := LookupScalar("COALESCE", 0); err == nil {
		t.Error("variadic minimum not enforced")
	}
	if _, err := LookupScalar("COALESCE", 9); err != nil {
		t.Error("variadic maximum wrongly enforced")
	}
}

func TestScalarBuiltins(t *testing.T) {
	eval := func(name string, args ...types.Value) (types.Value, error) {
		fn, err := LookupScalar(name, len(args))
		if err != nil {
			t.Fatalf("lookup %s/%d: %v", name, len(args), err)
		}
		return fn(args)
	}
	mustEval := func(name string, args ...types.Value) types.Value {
		v, err := eval(name, args...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return v
	}
	if v := mustEval("BIGINT", types.NewInt(5)); v.Int() != 5 {
		t.Error("BIGINT")
	}
	if v := mustEval("LOWER", types.NewString("AbC")); v.Str() != "abc" {
		t.Error("LOWER")
	}
	if v := mustEval("TRIM", types.NewString("  x ")); v.Str() != "x" {
		t.Error("TRIM")
	}
	if v := mustEval("LTRIM", types.NewString("  x ")); v.Str() != "x " {
		t.Error("LTRIM")
	}
	if v := mustEval("RTRIM", types.NewString(" x  ")); v.Str() != " x" {
		t.Error("RTRIM")
	}
	if v := mustEval("LENGTH", types.NewString("abcd")); v.Int() != 4 {
		t.Error("LENGTH")
	}
	if v := mustEval("LENGTH", types.Null); !v.IsNull() {
		t.Error("LENGTH(NULL)")
	}
	if v := mustEval("SUBSTR", types.NewString("purchase"), types.NewInt(4)); v.Str() != "chase" {
		t.Error("SUBSTR/2:", v.Str())
	}
	if v := mustEval("SUBSTR", types.NewString("purchase"), types.NewInt(1), types.NewInt(4)); v.Str() != "purc" {
		t.Error("SUBSTR/3:", v.Str())
	}
	if v := mustEval("SUBSTR", types.NewString("ab"), types.NewInt(9)); v.Str() != "" {
		t.Error("SUBSTR past end")
	}
	if v := mustEval("SUBSTR", types.NewString("ab"), types.NewInt(-3)); v.Str() != "ab" {
		t.Error("SUBSTR clamps start")
	}
	if _, err := eval("SUBSTR", types.NewString("ab"), types.NewInt(1), types.NewInt(-1)); err == nil {
		t.Error("SUBSTR negative length accepted")
	}
	if v := mustEval("CONCAT", types.NewString("a"), types.NewString("b"), types.NewString("c")); v.Str() != "abc" {
		t.Error("CONCAT")
	}
	if v := mustEval("ABS", types.NewInt(-9)); v.Int() != 9 {
		t.Error("ABS int")
	}
	if v := mustEval("ABS", types.NewFloat(-1.5)); v.Float() != 1.5 {
		t.Error("ABS float")
	}
	if _, err := eval("ABS", types.NewString("x")); err == nil {
		t.Error("ABS string accepted")
	}
	if v := mustEval("MOD", types.NewInt(7), types.NewInt(3)); v.Int() != 1 {
		t.Error("MOD")
	}
	if v := mustEval("ROUND", types.NewFloat(2.567), types.NewInt(1)); v.Float() != 2.6 {
		t.Error("ROUND/2:", v.Float())
	}
	if v := mustEval("ROUND", types.NewFloat(2.5)); v.Float() != 3 {
		t.Error("ROUND/1")
	}
	if v := mustEval("FLOOR", types.NewFloat(2.9)); v.Float() != 2 {
		t.Error("FLOOR")
	}
	if v := mustEval("CEIL", types.NewFloat(2.1)); v.Float() != 3 {
		t.Error("CEIL")
	}
	if v := mustEval("SQRT", types.NewFloat(9)); v.Float() != 3 {
		t.Error("SQRT")
	}
	if _, err := eval("SQRT", types.NewFloat(-1)); err == nil {
		t.Error("SQRT negative accepted")
	}
	if v := mustEval("COALESCE", types.Null, types.Null, types.NewInt(4)); v.Int() != 4 {
		t.Error("COALESCE")
	}
	if v := mustEval("COALESCE", types.Null); !v.IsNull() {
		t.Error("COALESCE all NULL")
	}
	if v := mustEval("NULLIF", types.NewInt(3), types.NewInt(3)); !v.IsNull() {
		t.Error("NULLIF equal")
	}
	if v := mustEval("NULLIF", types.NewInt(3), types.NewInt(4)); v.Int() != 3 {
		t.Error("NULLIF unequal")
	}
	if v := mustEval("NULLIF", types.NewInt(3), types.Null); v.Int() != 3 {
		t.Error("NULLIF with NULL")
	}
	if v := mustEval("LEAST", types.NewInt(5), types.NewInt(2), types.NewInt(9)); v.Int() != 2 {
		t.Error("LEAST")
	}
	if v := mustEval("GREATEST", types.NewInt(5), types.NewInt(2), types.NewInt(9)); v.Int() != 9 {
		t.Error("GREATEST")
	}
	if v := mustEval("GREATEST", types.NewInt(5), types.Null); !v.IsNull() {
		t.Error("GREATEST with NULL")
	}
}

func TestIsAggregateName(t *testing.T) {
	for _, n := range []string{"count", "SUM", "Avg", "MIN", "max"} {
		if !IsAggregateName(n) {
			t.Errorf("%s not recognised as aggregate", n)
		}
	}
	if IsAggregateName("UPPER") {
		t.Error("UPPER is not an aggregate")
	}
}

func TestTruthy(t *testing.T) {
	if ok, err := Truthy(types.Null); err != nil || ok {
		t.Error("NULL must not match")
	}
	if ok, err := Truthy(types.NewBool(true)); err != nil || !ok {
		t.Error("TRUE must match")
	}
	if _, err := Truthy(types.NewString("zz")); err == nil {
		t.Error("non-boolean truthiness accepted")
	}
}

func TestExprStrings(t *testing.T) {
	exprs := []Expr{
		Bin{Op: "+", L: Const{V: types.NewInt(1)}, R: Const{V: types.NewInt(2)}},
		Unary{Op: "NOT", X: Const{V: types.NewBool(true)}},
		Cast{X: Const{V: types.NewInt(1)}, Type: types.BigInt},
		IsNull{X: Const{V: types.Null}},
		IsNull{X: Const{V: types.Null}, Not: true},
		Between{X: Const{V: types.NewInt(1)}, Lo: Const{V: types.NewInt(0)}, Hi: Const{V: types.NewInt(2)}, Not: true},
		In{X: Const{V: types.NewInt(1)}, List: []Expr{Const{V: types.NewInt(2)}}, Not: true},
		Like{X: Const{V: types.NewString("a")}, Pattern: Const{V: types.NewString("%")}, Not: true},
		Case{Whens: []struct{ Cond, Result Expr }{{Const{V: types.NewBool(true)}, Const{V: types.NewInt(1)}}}, Else: Const{V: types.NewInt(0)}},
		ScalarCall{Name: "UPPER", Args: []Expr{Const{V: types.NewString("x")}}},
	}
	for _, e := range exprs {
		if e.String() == "" {
			t.Errorf("%T renders empty", e)
		}
	}
}
