package exec

import (
	"errors"
	"io"
	"strings"
	"testing"

	"fedwf/internal/catalog"
	"fedwf/internal/simlat"
	"fedwf/internal/storage"
	"fedwf/internal/types"
)

func intRows(vals ...int64) []types.Row {
	out := make([]types.Row, len(vals))
	for i, v := range vals {
		out[i] = types.Row{types.NewInt(v)}
	}
	return out
}

func intSchema(name string) types.Schema {
	return types.Schema{{Name: name, Type: types.Integer}}
}

func runAll(t *testing.T, op Operator) *types.Table {
	t.Helper()
	tab, err := Run(op, &Ctx{Task: simlat.Free()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return tab
}

func TestValuesOperator(t *testing.T) {
	v := &Values{Sch: intSchema("n"), Rows: intRows(1, 2, 3)}
	tab := runAll(t, v)
	if tab.Len() != 3 || tab.Rows[2][0].Int() != 3 {
		t.Errorf("values:\n%s", tab)
	}
	// Reopen yields the same rows.
	tab = runAll(t, v)
	if tab.Len() != 3 {
		t.Errorf("values after reopen: %d rows", tab.Len())
	}
	if v.Describe() == "" || v.Children() != nil {
		t.Error("Describe/Children")
	}
}

func TestTableScanOperator(t *testing.T) {
	tb, err := storage.NewTable("t", intSchema("n"))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if err := tb.Insert(types.Row{types.NewInt(i)}); err != nil {
			t.Fatal(err)
		}
	}
	scan := &TableScan{Table: tb, Sch: tb.Schema()}
	tab := runAll(t, scan)
	if tab.Len() != 5 {
		t.Errorf("scan rows = %d", tab.Len())
	}
	if !strings.Contains(scan.Describe(), "t") {
		t.Error("Describe")
	}
}

func TestFilterProjectLimit(t *testing.T) {
	src := &Values{Sch: intSchema("n"), Rows: intRows(1, 2, 3, 4, 5, 6)}
	filtered := &Filter{Child: src, Pred: Bin{Op: ">", L: Col{Idx: 0, Name: "n"}, R: Const{V: types.NewInt(2)}}}
	projected := &Project{
		Child: filtered,
		Exprs: []Expr{Bin{Op: "*", L: Col{Idx: 0, Name: "n"}, R: Const{V: types.NewInt(10)}}},
		Sch:   intSchema("n10"),
	}
	limited := &Limit{Child: projected, Count: 2, Skip: 1}
	tab := runAll(t, limited)
	if tab.Len() != 2 || tab.Rows[0][0].Int() != 40 || tab.Rows[1][0].Int() != 50 {
		t.Errorf("pipeline:\n%s", tab)
	}
	// Unlimited count.
	unlimited := &Limit{Child: &Values{Sch: intSchema("n"), Rows: intRows(1, 2)}, Count: -1}
	if got := runAll(t, unlimited).Len(); got != 2 {
		t.Errorf("unlimited limit = %d", got)
	}
}

func TestSortOperator(t *testing.T) {
	src := &Values{Sch: types.Schema{
		{Name: "a", Type: types.Integer}, {Name: "b", Type: types.VarChar},
	}, Rows: []types.Row{
		{types.NewInt(2), types.NewString("x")},
		{types.Null, types.NewString("n")},
		{types.NewInt(1), types.NewString("y")},
		{types.NewInt(2), types.NewString("a")},
	}}
	sorted := &Sort{Child: src, Keys: []SortKey{
		{Expr: Col{Idx: 0, Name: "a"}},
		{Expr: Col{Idx: 1, Name: "b"}, Desc: true},
	}}
	tab := runAll(t, sorted)
	// NULLs first ascending; ties broken by b DESC.
	if !tab.Rows[0][0].IsNull() || tab.Rows[1][0].Int() != 1 ||
		tab.Rows[2][1].Str() != "x" || tab.Rows[3][1].Str() != "a" {
		t.Errorf("sorted:\n%s", tab)
	}
	// Descending puts NULLs last.
	desc := &Sort{Child: src, Keys: []SortKey{{Expr: Col{Idx: 0, Name: "a"}, Desc: true}}}
	tab = runAll(t, desc)
	if !tab.Rows[3][0].IsNull() {
		t.Errorf("desc NULL placement:\n%s", tab)
	}
}

func TestDistinctOperator(t *testing.T) {
	src := &Values{Sch: intSchema("n"), Rows: intRows(1, 2, 1, 3, 2, 1)}
	tab := runAll(t, &Distinct{Child: src})
	if tab.Len() != 3 {
		t.Errorf("distinct rows = %d", tab.Len())
	}
}

func TestApplyCrossAndLateral(t *testing.T) {
	left := &Values{Sch: intSchema("l"), Rows: intRows(1, 2)}
	right := &Values{Sch: intSchema("r"), Rows: intRows(10, 20)}
	apply := &Apply{Left: left, Right: right, Sch: types.Schema{
		{Name: "l", Type: types.Integer}, {Name: "r", Type: types.Integer},
	}}
	tab := runAll(t, apply)
	if tab.Len() != 4 {
		t.Errorf("cross rows = %d", tab.Len())
	}
	if len(apply.Children()) != 2 {
		t.Error("Children")
	}
	// Composition cost charged when Independent.
	apply.Independent = true
	task := simlat.NewVirtualTask()
	if _, err := Run(apply, &Ctx{Task: task, CompositionCost: 6 * simlat.PaperMS}); err != nil {
		t.Fatal(err)
	}
	if task.Elapsed() != 6*simlat.PaperMS {
		t.Errorf("composition cost = %v", task.Elapsed())
	}
}

// fnTableFunc is a minimal catalog.TableFunc used for lateral tests.
type fnTableFunc struct {
	name string
	fn   func(args []types.Value) (*types.Table, error)
}

func (f *fnTableFunc) Name() string { return f.name }
func (f *fnTableFunc) Params() []types.Column {
	return []types.Column{{Name: "x", Type: types.Integer}}
}
func (f *fnTableFunc) Schema() types.Schema { return intSchema("y") }
func (f *fnTableFunc) Invoke(rt catalog.QueryRunner, task *simlat.Task, args []types.Value) (*types.Table, error) {
	return f.fn(args)
}

func TestFuncScanLateralBinding(t *testing.T) {
	calls := 0
	double := &fnTableFunc{name: "Double", fn: func(args []types.Value) (*types.Table, error) {
		calls++
		out := types.NewTable(intSchema("y"))
		out.MustAppend(types.Row{types.NewInt(2 * args[0].Int())})
		return out, nil
	}}
	left := &Values{Sch: intSchema("l"), Rows: intRows(3, 4)}
	scan := &FuncScan{Fn: double, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")}
	apply := &Apply{Left: left, Right: scan, Sch: types.Schema{
		{Name: "l", Type: types.Integer}, {Name: "y", Type: types.Integer},
	}}
	tab := runAll(t, apply)
	if calls != 2 || tab.Len() != 2 {
		t.Fatalf("calls=%d rows=%d", calls, tab.Len())
	}
	if tab.Rows[0][1].Int() != 6 || tab.Rows[1][1].Int() != 8 {
		t.Errorf("lateral results:\n%s", tab)
	}
	if !strings.Contains(scan.Describe(), "Double") {
		t.Error("Describe")
	}
}

func TestFuncScanError(t *testing.T) {
	boom := &fnTableFunc{name: "Boom", fn: func(args []types.Value) (*types.Table, error) {
		return nil, errors.New("boom")
	}}
	scan := &FuncScan{Fn: boom, Args: []Expr{Const{V: types.NewInt(1)}}, Sch: intSchema("y")}
	if _, err := Run(scan, &Ctx{Task: simlat.Free()}); err == nil {
		t.Error("function error swallowed")
	}
	// Argument evaluation errors surface with context.
	scanBadArg := &FuncScan{Fn: boom, Args: []Expr{Col{Idx: 9, Name: "out"}}, Sch: intSchema("y")}
	if _, err := Run(scanBadArg, &Ctx{Task: simlat.Free()}); err == nil {
		t.Error("argument error swallowed")
	}
}

func TestLeftApplyPadsNulls(t *testing.T) {
	left := &Values{Sch: intSchema("l"), Rows: intRows(1, 2, 3)}
	right := &Values{Sch: intSchema("r"), Rows: intRows(10, 20)}
	on := Bin{Op: "=", L: Bin{Op: "*", L: Col{Idx: 0, Name: "l"}, R: Const{V: types.NewInt(10)}}, R: Col{Idx: 1, Name: "r"}}
	la := &LeftApply{Left: left, Right: right, On: on, Sch: types.Schema{
		{Name: "l", Type: types.Integer}, {Name: "r", Type: types.Integer},
	}}
	tab := runAll(t, la)
	if tab.Len() != 3 {
		t.Fatalf("left join rows = %d\n%s", tab.Len(), tab)
	}
	if tab.Rows[0][1].Int() != 10 || tab.Rows[1][1].Int() != 20 || !tab.Rows[2][1].IsNull() {
		t.Errorf("left join:\n%s", tab)
	}
	if !strings.Contains(la.Describe(), "LeftApply") {
		t.Error("Describe")
	}
}

func TestHashJoinMatchesAndSkipsNullKeys(t *testing.T) {
	left := &Values{Sch: intSchema("l"), Rows: []types.Row{
		{types.NewInt(1)}, {types.NewInt(2)}, {types.Null}, {types.NewInt(2)},
	}}
	right := &Values{Sch: intSchema("r"), Rows: []types.Row{
		{types.NewInt(2)}, {types.NewInt(3)}, {types.Null},
	}}
	hj := &HashJoin{
		Left: left, Right: right,
		LeftKeys:  []Expr{Col{Idx: 0, Name: "l"}},
		RightKeys: []Expr{Col{Idx: 0, Name: "r"}},
		Sch: types.Schema{
			{Name: "l", Type: types.Integer}, {Name: "r", Type: types.Integer},
		},
	}
	tab := runAll(t, hj)
	// Two left rows with key 2 match one right row; NULL keys never join.
	if tab.Len() != 2 {
		t.Fatalf("hash join rows = %d\n%s", tab.Len(), tab)
	}
	for _, r := range tab.Rows {
		if r[0].Int() != 2 || r[1].Int() != 2 {
			t.Errorf("bad join row %v", r)
		}
	}
	if !strings.Contains(hj.Describe(), "HashJoin") {
		t.Error("Describe")
	}
	// Residual predicate.
	hj2 := &HashJoin{
		Left: &Values{Sch: intSchema("l"), Rows: intRows(1, 2)}, Right: &Values{Sch: intSchema("r"), Rows: intRows(1, 2)},
		LeftKeys:  []Expr{Col{Idx: 0, Name: "l"}},
		RightKeys: []Expr{Col{Idx: 0, Name: "r"}},
		Residual:  Bin{Op: ">", L: Col{Idx: 0, Name: "l"}, R: Const{V: types.NewInt(1)}},
		Sch: types.Schema{
			{Name: "l", Type: types.Integer}, {Name: "r", Type: types.Integer},
		},
	}
	if got := runAll(t, hj2).Len(); got != 1 {
		t.Errorf("residual join rows = %d", got)
	}
}

func TestAggOperator(t *testing.T) {
	src := &Values{Sch: types.Schema{
		{Name: "g", Type: types.Integer}, {Name: "v", Type: types.Integer},
	}, Rows: []types.Row{
		{types.NewInt(1), types.NewInt(10)},
		{types.NewInt(1), types.NewInt(20)},
		{types.NewInt(2), types.NewInt(5)},
		{types.NewInt(1), types.Null}, // NULL ignored by aggregates
	}}
	agg := &Agg{
		Child:  src,
		Groups: []Expr{Col{Idx: 0, Name: "g"}},
		Aggs: []AggSpec{
			{Kind: AggCountStar},
			{Kind: AggCount, Arg: Col{Idx: 1, Name: "v"}},
			{Kind: AggSum, Arg: Col{Idx: 1, Name: "v"}},
			{Kind: AggAvg, Arg: Col{Idx: 1, Name: "v"}},
			{Kind: AggMin, Arg: Col{Idx: 1, Name: "v"}},
			{Kind: AggMax, Arg: Col{Idx: 1, Name: "v"}},
		},
		Sch: types.Schema{
			{Name: "g", Type: types.Integer},
			{Name: "c*", Type: types.BigInt},
			{Name: "c", Type: types.BigInt},
			{Name: "s", Type: types.BigInt},
			{Name: "a", Type: types.Double},
			{Name: "mn", Type: types.BigInt},
			{Name: "mx", Type: types.BigInt},
		},
	}
	tab := runAll(t, agg)
	if tab.Len() != 2 {
		t.Fatalf("groups = %d", tab.Len())
	}
	var g1 types.Row
	for _, r := range tab.Rows {
		if r[0].Int() == 1 {
			g1 = r
		}
	}
	if g1[1].Int() != 3 || g1[2].Int() != 2 || g1[3].Int() != 30 || g1[4].Float() != 15 ||
		g1[5].Int() != 10 || g1[6].Int() != 20 {
		t.Errorf("group 1 aggregates: %v", g1)
	}
	if !strings.Contains(agg.Describe(), "Aggregate") {
		t.Error("Describe")
	}
}

func TestAggDistinctAndEmptyScalar(t *testing.T) {
	src := &Values{Sch: intSchema("v"), Rows: intRows(1, 1, 2, 2, 3)}
	agg := &Agg{
		Child: src,
		Aggs: []AggSpec{
			{Kind: AggCount, Arg: Col{Idx: 0, Name: "v"}, Distinct: true},
			{Kind: AggSum, Arg: Col{Idx: 0, Name: "v"}, Distinct: true},
		},
		Sch: types.Schema{{Name: "c", Type: types.BigInt}, {Name: "s", Type: types.BigInt}},
	}
	tab := runAll(t, agg)
	if tab.Rows[0][0].Int() != 3 || tab.Rows[0][1].Int() != 6 {
		t.Errorf("distinct aggregates: %v", tab.Rows[0])
	}
	// Scalar aggregate over empty input: one row; COUNT 0, SUM NULL.
	empty := &Agg{
		Child: &Values{Sch: intSchema("v")},
		Aggs: []AggSpec{
			{Kind: AggCountStar},
			{Kind: AggSum, Arg: Col{Idx: 0, Name: "v"}},
			{Kind: AggAvg, Arg: Col{Idx: 0, Name: "v"}},
		},
		Sch: types.Schema{{Name: "c", Type: types.BigInt}, {Name: "s", Type: types.BigInt}, {Name: "a", Type: types.Double}},
	}
	tab = runAll(t, empty)
	if tab.Len() != 1 || tab.Rows[0][0].Int() != 0 || !tab.Rows[0][1].IsNull() || !tab.Rows[0][2].IsNull() {
		t.Errorf("empty scalar aggregate:\n%s", tab)
	}
	// Grouped aggregate over empty input: no rows.
	emptyGrouped := &Agg{
		Child:  &Values{Sch: intSchema("v")},
		Groups: []Expr{Col{Idx: 0, Name: "v"}},
		Aggs:   []AggSpec{{Kind: AggCountStar}},
		Sch:    types.Schema{{Name: "v", Type: types.Integer}, {Name: "c", Type: types.BigInt}},
	}
	if got := runAll(t, emptyGrouped).Len(); got != 0 {
		t.Errorf("empty grouped aggregate rows = %d", got)
	}
}

func TestAggKindOf(t *testing.T) {
	if k, err := AggKindOf("count", true); err != nil || k != AggCountStar {
		t.Error("COUNT(*)")
	}
	if k, err := AggKindOf("count", false); err != nil || k != AggCount {
		t.Error("COUNT(x)")
	}
	if _, err := AggKindOf("nope", false); err == nil {
		t.Error("unknown aggregate accepted")
	}
	for _, k := range []AggKind{AggCount, AggCountStar, AggSum, AggAvg, AggMin, AggMax} {
		if k.String() == "?" {
			t.Errorf("AggKind %d has no name", k)
		}
	}
}

func TestExplainString(t *testing.T) {
	src := &Values{Sch: intSchema("n"), Rows: intRows(1)}
	tree := &Limit{Child: &Filter{Child: src, Pred: Const{V: types.NewBool(true)}}, Count: 1}
	out := ExplainString(tree)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[1], "  Filter") {
		t.Errorf("explain:\n%s", out)
	}
}

func TestRunPropagatesOpenError(t *testing.T) {
	boom := &fnTableFunc{name: "Boom", fn: func([]types.Value) (*types.Table, error) {
		return nil, errors.New("open failure")
	}}
	scan := &FuncScan{Fn: boom, Args: []Expr{Const{V: types.NewInt(1)}}, Sch: intSchema("y")}
	if _, err := Run(scan, &Ctx{Task: simlat.Free()}); err == nil {
		t.Error("open error swallowed")
	}
}

func TestOperatorsAfterClose(t *testing.T) {
	// FuncScan.Next after Close returns EOF rather than panicking.
	ok := &fnTableFunc{name: "Ok", fn: func(args []types.Value) (*types.Table, error) {
		out := types.NewTable(intSchema("y"))
		out.MustAppend(types.Row{types.NewInt(1)})
		return out, nil
	}}
	scan := &FuncScan{Fn: ok, Args: []Expr{Const{V: types.NewInt(1)}}, Sch: intSchema("y")}
	if err := scan.Open(&Ctx{Task: simlat.Free()}, nil); err != nil {
		t.Fatal(err)
	}
	scan.Close()
	if _, err := scan.Next(); err != io.EOF {
		t.Errorf("Next after Close = %v", err)
	}
}
