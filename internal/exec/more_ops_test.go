package exec

import (
	"errors"
	"strings"
	"testing"

	"fedwf/internal/simlat"
	"fedwf/internal/sqlparser"
	"fedwf/internal/types"
)

func TestConcatOperator(t *testing.T) {
	a := &Values{Sch: intSchema("n"), Rows: intRows(1, 2)}
	b := &Values{Sch: intSchema("n"), Rows: intRows(3)}
	c := &Values{Sch: intSchema("n")}
	concat := &Concat{Inputs: []Operator{a, b, c}}
	tab := runAll(t, concat)
	if tab.Len() != 3 || tab.Rows[2][0].Int() != 3 {
		t.Errorf("concat:\n%s", tab)
	}
	// Reopen replays all inputs.
	tab = runAll(t, concat)
	if tab.Len() != 3 {
		t.Errorf("concat after reopen: %d rows", tab.Len())
	}
	if !strings.Contains(concat.Describe(), "3 inputs") || len(concat.Children()) != 3 {
		t.Error("Describe/Children")
	}
	// Close mid-stream is safe.
	if err := concat.Open(&Ctx{Task: simlat.Free()}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := concat.Next(); err != nil {
		t.Fatal(err)
	}
	if err := concat.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFuncCache(t *testing.T) {
	fc := NewFuncCache()
	tab := types.NewTable(intSchema("y"))
	calls := 0
	invoke := func(name string, args []types.Value) *types.Table {
		t.Helper()
		got, err := fc.Invoke(name, args, func() (*types.Table, error) {
			calls++
			return tab, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	args1 := []types.Value{types.NewInt(1), types.NewString("x")}
	invoke("Fn", args1)
	if calls != 1 {
		t.Fatal("empty cache did not call through")
	}
	if got := invoke("fn", args1); got != tab || calls != 1 { // case-insensitive name
		t.Error("cache miss after first call")
	}
	// Different args, different entry.
	invoke("Fn", []types.Value{types.NewInt(2), types.NewString("x")})
	if calls != 2 {
		t.Error("cross-args collision")
	}
	// Values that render distinctly must not collide via the separator.
	invoke("G", []types.Value{types.NewString("a"), types.NewString("b")})
	invoke("G", []types.Value{types.NewString("a\x00b")})
	if calls != 4 {
		t.Error("separator collision")
	}
	// Values of different types with identical renderings must not
	// collide: integer 1 vs string '1' vs double 1.0.
	invoke("H", []types.Value{types.NewInt(1)})
	invoke("H", []types.Value{types.NewString("1")})
	invoke("H", []types.Value{types.NewFloat(1)})
	if calls != 7 {
		t.Errorf("cross-type collision: %d calls", calls)
	}
	st := fc.Snapshot()
	if st.Hits != 1 || st.Misses != 7 || st.Coalesced != 0 {
		t.Errorf("stats = %+v", st)
	}
	if hits, misses := fc.Stats(); hits != 1 || misses != 7 {
		t.Errorf("Stats() = %d hits, %d misses", hits, misses)
	}
}

func TestFuncScanUsesCache(t *testing.T) {
	calls := 0
	fn := &fnTableFunc{name: "Cached", fn: func(args []types.Value) (*types.Table, error) {
		calls++
		out := types.NewTable(intSchema("y"))
		out.MustAppend(types.Row{types.NewInt(args[0].Int())})
		return out, nil
	}}
	scan := &FuncScan{Fn: fn, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")}
	apply := &Apply{
		Left:  &Values{Sch: intSchema("l"), Rows: intRows(7, 7, 8)},
		Right: scan,
		Sch:   types.Schema{{Name: "l", Type: types.Integer}, {Name: "y", Type: types.Integer}},
	}
	ctx := &Ctx{Task: simlat.Free(), FuncCache: NewFuncCache()}
	tab, err := Run(apply, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 || calls != 2 {
		t.Errorf("rows=%d calls=%d (want 3 rows from 2 invocations)", tab.Len(), calls)
	}
	hits, misses := ctx.FuncCache.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("cache stats = %d/%d", hits, misses)
	}
}

// stubForeign implements catalog.ForeignServer for RemoteScan tests.
type stubForeign struct {
	res *types.Table
	err error
}

func (s *stubForeign) Name() string { return "stub" }
func (s *stubForeign) TableSchema(string) (types.Schema, error) {
	return s.res.Schema, nil
}
func (s *stubForeign) Query(sel *sqlparser.Select, task *simlat.Task) (*types.Table, error) {
	if s.err != nil {
		return nil, s.err
	}
	return s.res, nil
}

func TestRemoteScanOperator(t *testing.T) {
	res := types.NewTable(intSchema("n"))
	res.MustAppend(types.Row{types.NewInt(5)})
	sel, err := sqlparser.ParseSelect("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	scan := &RemoteScan{Server: &stubForeign{res: res}, Query: sel, Sch: intSchema("n")}
	tab := runAll(t, scan)
	if tab.Len() != 1 || tab.Rows[0][0].Int() != 5 {
		t.Errorf("remote scan:\n%s", tab)
	}
	if !strings.Contains(scan.Describe(), "RemoteScan") || scan.Children() != nil {
		t.Error("Describe/Children")
	}
	// Remote error propagates.
	bad := &RemoteScan{Server: &stubForeign{err: errors.New("down")}, Query: sel, Sch: intSchema("n")}
	if _, err := Run(bad, &Ctx{Task: simlat.Free()}); err == nil {
		t.Error("remote error swallowed")
	}
	// Column-count mismatch detected.
	wide := &RemoteScan{Server: &stubForeign{res: res}, Query: sel, Sch: types.Schema{
		{Name: "a", Type: types.Integer}, {Name: "b", Type: types.Integer},
	}}
	if _, err := Run(wide, &Ctx{Task: simlat.Free()}); err == nil {
		t.Error("schema mismatch swallowed")
	}
}

func TestDescribeAndChildrenEverywhere(t *testing.T) {
	vals := &Values{Sch: intSchema("n"), Rows: intRows(1)}
	ops := []Operator{
		&Filter{Child: vals, Pred: Const{V: types.NewBool(true)}},
		&Project{Child: vals, Exprs: []Expr{Col{Idx: 0, Name: "n"}}, Sch: intSchema("n")},
		&Sort{Child: vals, Keys: []SortKey{{Expr: Col{Idx: 0, Name: "n"}, Desc: true}}},
		&Distinct{Child: vals},
		&Limit{Child: vals, Count: 1},
		&Agg{Child: vals, Aggs: []AggSpec{{Kind: AggCountStar}}, Sch: intSchema("c")},
		&LeftApply{Left: vals, Right: vals, Sch: types.Schema{
			{Name: "a", Type: types.Integer}, {Name: "b", Type: types.Integer}}},
	}
	for _, op := range ops {
		if op.Describe() == "" {
			t.Errorf("%T renders empty Describe", op)
		}
		if len(op.Children()) == 0 {
			t.Errorf("%T reports no children", op)
		}
		if len(op.Schema()) == 0 {
			t.Errorf("%T reports empty schema", op)
		}
	}
	hj := &HashJoin{
		Left: vals, Right: vals,
		LeftKeys:  []Expr{Col{Idx: 0, Name: "a"}},
		RightKeys: []Expr{Col{Idx: 0, Name: "b"}},
		Residual:  Const{V: types.NewBool(true)},
		Sch: types.Schema{
			{Name: "a", Type: types.Integer}, {Name: "b", Type: types.Integer}},
	}
	if !strings.Contains(hj.Describe(), "residual") {
		t.Error("HashJoin Describe without residual note")
	}
	agg := &Agg{
		Child:  vals,
		Groups: []Expr{Col{Idx: 0, Name: "n"}},
		Aggs:   []AggSpec{{Kind: AggSum, Arg: Col{Idx: 0, Name: "n"}, Distinct: true}},
		Sch:    types.Schema{{Name: "n", Type: types.Integer}, {Name: "s", Type: types.BigInt}},
	}
	if !strings.Contains(agg.Describe(), "DISTINCT") || !strings.Contains(agg.Describe(), "by") {
		t.Errorf("Agg describe = %q", agg.Describe())
	}
}

func TestAggKindStrings(t *testing.T) {
	specs := []AggSpec{
		{Kind: AggCountStar},
		{Kind: AggCount, Arg: Col{Idx: 0, Name: "x"}},
		{Kind: AggSum, Arg: Col{Idx: 0, Name: "x"}, Distinct: true},
	}
	if specs[0].String() != "COUNT(*)" {
		t.Error(specs[0].String())
	}
	if !strings.Contains(specs[2].String(), "DISTINCT") {
		t.Error(specs[2].String())
	}
	for _, name := range []string{"sum", "avg", "min", "max"} {
		if _, err := AggKindOf(name, false); err != nil {
			t.Errorf("AggKindOf(%s): %v", name, err)
		}
	}
}
