package exec

import (
	"fmt"
	"io"
	"strings"

	"fedwf/internal/types"
)

// AggKind enumerates built-in aggregate functions.
type AggKind int

// Aggregate kinds.
const (
	AggCount AggKind = iota
	AggCountStar
	AggSum
	AggAvg
	AggMin
	AggMax
)

// AggKindOf maps a function name to its aggregate kind; star selects
// COUNT(*).
func AggKindOf(name string, star bool) (AggKind, error) {
	switch strings.ToUpper(name) {
	case "COUNT":
		if star {
			return AggCountStar, nil
		}
		return AggCount, nil
	case "SUM":
		return AggSum, nil
	case "AVG":
		return AggAvg, nil
	case "MIN":
		return AggMin, nil
	case "MAX":
		return AggMax, nil
	default:
		return 0, fmt.Errorf("exec: unknown aggregate %s", name)
	}
}

func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "COUNT"
	case AggCountStar:
		return "COUNT(*)"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return "?"
	}
}

// AggSpec is one aggregate computation over the child's rows.
type AggSpec struct {
	Kind     AggKind
	Arg      Expr // nil for COUNT(*)
	Distinct bool
}

func (a AggSpec) String() string {
	if a.Kind == AggCountStar {
		return "COUNT(*)"
	}
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", a.Kind, d, a.Arg)
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	spec    AggSpec
	count   int64
	sum     types.Value
	extreme types.Value
	seen    map[uint64][]types.Value // for DISTINCT
}

func newAggState(spec AggSpec) *aggState {
	st := &aggState{spec: spec, sum: types.Null, extreme: types.Null}
	if spec.Distinct {
		st.seen = make(map[uint64][]types.Value)
	}
	return st
}

func (st *aggState) add(row types.Row) error {
	if st.spec.Kind == AggCountStar {
		st.count++
		return nil
	}
	v, err := st.spec.Arg.Eval(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // aggregates ignore NULL inputs
	}
	if st.spec.Distinct {
		h := v.Hash()
		for _, prev := range st.seen[h] {
			if prev.Equal(v) {
				return nil
			}
		}
		st.seen[h] = append(st.seen[h], v)
	}
	st.count++
	switch st.spec.Kind {
	case AggSum, AggAvg:
		if st.sum.IsNull() {
			st.sum = v
		} else {
			st.sum, err = types.Add(st.sum, v)
			if err != nil {
				return err
			}
		}
	case AggMin, AggMax:
		if st.extreme.IsNull() {
			st.extreme = v
			return nil
		}
		c, err := types.Compare(v, st.extreme)
		if err != nil {
			return err
		}
		if (st.spec.Kind == AggMin && c < 0) || (st.spec.Kind == AggMax && c > 0) {
			st.extreme = v
		}
	}
	return nil
}

func (st *aggState) result() (types.Value, error) {
	switch st.spec.Kind {
	case AggCount, AggCountStar:
		return types.NewInt(st.count), nil
	case AggSum:
		return st.sum, nil
	case AggAvg:
		if st.count == 0 {
			return types.Null, nil
		}
		f, err := st.sum.AsFloat()
		if err != nil {
			return types.Null, err
		}
		return types.NewFloat(f / float64(st.count)), nil
	case AggMin, AggMax:
		return st.extreme, nil
	default:
		return types.Null, fmt.Errorf("exec: bad aggregate kind %d", st.spec.Kind)
	}
}

// Agg implements hash aggregation. Output rows are the group-by values
// followed by the aggregate results, in specification order. Without
// GROUP BY keys it emits exactly one row (the SQL scalar-aggregate case),
// even over empty input.
type Agg struct {
	Child  Operator
	Groups []Expr
	Aggs   []AggSpec
	Sch    types.Schema

	rows []types.Row
	pos  int
}

// Schema implements Operator.
func (g *Agg) Schema() types.Schema { return g.Sch }

// Open implements Operator.
func (g *Agg) Open(ctx *Ctx, bind types.Row) error {
	if err := g.Child.Open(ctx, bind); err != nil {
		return err
	}
	defer g.Child.Close()
	type group struct {
		keys   []types.Value
		states []*aggState
	}
	groups := make(map[uint64][]*group)
	var order []*group
	for {
		r, err := g.Child.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		keys := make([]types.Value, len(g.Groups))
		var h uint64 = 14695981039346656037
		for i, ge := range g.Groups {
			v, err := ge.Eval(r)
			if err != nil {
				return err
			}
			keys[i] = v
			h = h*1099511628211 ^ v.Hash()
		}
		var grp *group
		for _, cand := range groups[h] {
			same := true
			for i := range keys {
				if !cand.keys[i].Equal(keys[i]) {
					same = false
					break
				}
			}
			if same {
				grp = cand
				break
			}
		}
		if grp == nil {
			grp = &group{keys: keys, states: make([]*aggState, len(g.Aggs))}
			for i, spec := range g.Aggs {
				grp.states[i] = newAggState(spec)
			}
			groups[h] = append(groups[h], grp)
			order = append(order, grp)
		}
		for _, st := range grp.states {
			if err := st.add(r); err != nil {
				return err
			}
		}
	}
	if len(order) == 0 && len(g.Groups) == 0 {
		// Scalar aggregate over empty input: one row of defaults.
		grp := &group{states: make([]*aggState, len(g.Aggs))}
		for i, spec := range g.Aggs {
			grp.states[i] = newAggState(spec)
		}
		order = append(order, grp)
	}
	g.rows = make([]types.Row, 0, len(order))
	for _, grp := range order {
		row := make(types.Row, 0, len(grp.keys)+len(grp.states))
		row = append(row, grp.keys...)
		for _, st := range grp.states {
			v, err := st.result()
			if err != nil {
				return err
			}
			row = append(row, v)
		}
		g.rows = append(g.rows, row)
	}
	g.pos = 0
	return nil
}

// Next implements Operator.
func (g *Agg) Next() (types.Row, error) {
	if g.pos >= len(g.rows) {
		return nil, io.EOF
	}
	r := g.rows[g.pos]
	g.pos++
	return r, nil
}

// Close implements Operator.
func (g *Agg) Close() error { g.rows = nil; return nil }

// Describe implements Operator.
func (g *Agg) Describe() string {
	groups := make([]string, len(g.Groups))
	for i, e := range g.Groups {
		groups[i] = e.String()
	}
	aggs := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		aggs[i] = a.String()
	}
	s := "Aggregate"
	if len(groups) > 0 {
		s += " by " + strings.Join(groups, ", ")
	}
	if len(aggs) > 0 {
		s += " compute " + strings.Join(aggs, ", ")
	}
	return s
}

// Children implements Operator.
func (g *Agg) Children() []Operator { return []Operator{g.Child} }

// Clone implements Operator.
func (g *Agg) Clone() Operator {
	return &Agg{Child: g.Child.Clone(), Groups: g.Groups, Aggs: g.Aggs, Sch: g.Sch}
}
