package exec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fedwf/internal/catalog"
	"fedwf/internal/simlat"
	"fedwf/internal/types"
)

// taskFnTableFunc is a catalog.TableFunc that charges simulated work to
// the invoking task, for Fork/Join accounting tests.
type taskFnTableFunc struct {
	name string
	cost time.Duration
	fn   func(args []types.Value) (*types.Table, error)
}

func (f *taskFnTableFunc) Name() string { return f.name }
func (f *taskFnTableFunc) Params() []types.Column {
	return []types.Column{{Name: "x", Type: types.Integer}}
}
func (f *taskFnTableFunc) Schema() types.Schema { return intSchema("y") }
func (f *taskFnTableFunc) Invoke(rt catalog.QueryRunner, task *simlat.Task, args []types.Value) (*types.Table, error) {
	task.Spend(f.cost)
	return f.fn(args)
}

// fanOut returns a fn producing arg%3 rows (arg*10+j), so merges cover
// multi-row, single-row, and empty right-side results.
func fanOut(args []types.Value) (*types.Table, error) {
	out := types.NewTable(intSchema("y"))
	n := args[0].Int() % 3
	for j := int64(0); j < n; j++ {
		out.MustAppend(types.Row{types.NewInt(args[0].Int()*10 + j)})
	}
	return out, nil
}

func seqInts(n int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func TestParallelApplyMatchesSequential(t *testing.T) {
	left := intRows(seqInts(16)...)
	mk := func() (Operator, Operator) {
		scan := func() Operator {
			return &FuncScan{Fn: &fnTableFunc{name: "F", fn: fanOut}, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")}
		}
		seq := &Apply{Left: &Values{Sch: intSchema("l"), Rows: left}, Right: scan(), Sch: types.Schema{{Name: "l", Type: types.Integer}, {Name: "y", Type: types.Integer}}}
		par := &ParallelApply{Left: &Values{Sch: intSchema("l"), Rows: left}, Right: scan(), Sch: seq.Sch}
		return seq, par
	}
	seq, _ := mk()
	want := runAll(t, seq)
	for _, dop := range []int{1, 2, 3, 4, 16, 32} {
		_, par := mk()
		par.(*ParallelApply).DOP = dop
		got := runAll(t, par)
		if got.Len() != want.Len() {
			t.Fatalf("dop=%d: %d rows, want %d", dop, got.Len(), want.Len())
		}
		for i := range want.Rows {
			for j := range want.Rows[i] {
				if !got.Rows[i][j].Equal(want.Rows[i][j]) {
					t.Fatalf("dop=%d: row %d = %v, want %v", dop, i, got.Rows[i], want.Rows[i])
				}
			}
		}
	}
}

func TestParallelApplyOuterMatchesLeftApply(t *testing.T) {
	left := intRows(seqInts(12)...)
	// l > 3 keeps some matched rows and NULL-pads the rest.
	on := Bin{Op: ">", L: Col{Idx: 0, Name: "l"}, R: Const{V: types.NewInt(3)}}
	sch := types.Schema{{Name: "l", Type: types.Integer}, {Name: "y", Type: types.Integer}}
	scan := func() Operator {
		return &FuncScan{Fn: &fnTableFunc{name: "F", fn: fanOut}, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")}
	}
	seq := &LeftApply{Left: &Values{Sch: intSchema("l"), Rows: left}, Right: scan(), On: on, Sch: sch}
	par := &ParallelApply{Left: &Values{Sch: intSchema("l"), Rows: left}, Right: scan(), On: on, Sch: sch, DOP: 4, Outer: true}
	want := runAll(t, seq)
	got := runAll(t, par)
	if got.String() != want.String() {
		t.Fatalf("outer mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestParallelApplyVirtualMaxBranch(t *testing.T) {
	// 16 outer rows at 10ms each: sequential charges 160ms, DOP 4 charges
	// 4 rows per worker branch, so Join must report exactly 40ms.
	const cost = 10 * time.Millisecond
	mk := func(par bool) Operator {
		scan := &FuncScan{
			Fn:   &taskFnTableFunc{name: "Slow", cost: cost, fn: fanOut},
			Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y"),
		}
		leftOp := &Values{Sch: intSchema("l"), Rows: intRows(seqInts(16)...)}
		sch := types.Schema{{Name: "l", Type: types.Integer}, {Name: "y", Type: types.Integer}}
		if par {
			return &ParallelApply{Left: leftOp, Right: scan, Sch: sch, DOP: 4}
		}
		return &Apply{Left: leftOp, Right: scan, Sch: sch}
	}
	seqTask := simlat.NewVirtualTask()
	if _, err := Run(mk(false), &Ctx{Task: seqTask}); err != nil {
		t.Fatal(err)
	}
	parTask := simlat.NewVirtualTask()
	if _, err := Run(mk(true), &Ctx{Task: parTask}); err != nil {
		t.Fatal(err)
	}
	if got, want := seqTask.Elapsed(), 16*cost; got != want {
		t.Errorf("sequential elapsed = %v, want %v", got, want)
	}
	if got, want := parTask.Elapsed(), 4*cost; got != want {
		t.Errorf("parallel elapsed = %v, want %v (max-branch, not summed)", got, want)
	}
	// Spent work (the summed cost over all branches) stays the full 160ms.
	if got, want := parTask.Spent(), 16*cost; got != want {
		t.Errorf("parallel spent = %v, want %v", got, want)
	}
}

func TestParallelApplyWallSpeedup(t *testing.T) {
	// 24 outer rows at 10ms each: sequential sleeps ~240ms of scaled wall
	// time, DOP 4 should finish in ~60ms. Assert > 2x to stay robust on
	// loaded machines.
	const cost = 10 * time.Millisecond
	run := func(dop int) time.Duration {
		var right Operator = &FuncScan{
			Fn:   &taskFnTableFunc{name: "Slow", cost: cost, fn: fanOut},
			Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y"),
		}
		leftOp := &Values{Sch: intSchema("l"), Rows: intRows(seqInts(24)...)}
		sch := types.Schema{{Name: "l", Type: types.Integer}, {Name: "y", Type: types.Integer}}
		var op Operator
		if dop > 1 {
			op = &ParallelApply{Left: leftOp, Right: right, Sch: sch, DOP: dop}
		} else {
			op = &Apply{Left: leftOp, Right: right, Sch: sch}
		}
		start := time.Now()
		if _, err := Run(op, &Ctx{Task: simlat.NewWallTask(1.0)}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	seq := run(1)
	par := run(4)
	if speedup := float64(seq) / float64(par); speedup <= 2 {
		t.Errorf("wall speedup at DOP=4 = %.2fx (seq %v, par %v), want > 2x", speedup, seq, par)
	}
}

func TestParallelApplyWorkerError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	release := make(chan struct{})
	fn := &fnTableFunc{name: "F", fn: func(args []types.Value) (*types.Table, error) {
		if args[0].Int() == 0 {
			// Let the other worker get one call in flight, then fail.
			<-release
			return nil, boom
		}
		if calls.Add(1) == 1 {
			close(release)
		}
		// Slow enough that the stop flag lands while this worker still has
		// most of its rows ahead of it.
		time.Sleep(time.Millisecond)
		return fanOut(args)
	}}
	par := &ParallelApply{
		Left:  &Values{Sch: intSchema("l"), Rows: intRows(seqInts(100)...)},
		Right: &FuncScan{Fn: fn, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")},
		Sch:   types.Schema{{Name: "l", Type: types.Integer}, {Name: "y", Type: types.Integer}},
		DOP:   2,
	}
	_, err := Run(par, &Ctx{Task: simlat.Free()})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The stop flag must cut the remaining 98 rows short: worker 1 may
	// finish the row in flight plus a few more before observing it, but
	// nowhere near its full share.
	if n := calls.Load(); n > 10 {
		t.Errorf("%d right-side calls after worker error, cancellation ineffective", n)
	}
}

func TestParallelApplyEmptyLeft(t *testing.T) {
	par := &ParallelApply{
		Left:  &Values{Sch: intSchema("l")},
		Right: &FuncScan{Fn: &fnTableFunc{name: "F", fn: fanOut}, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")},
		Sch:   types.Schema{{Name: "l", Type: types.Integer}, {Name: "y", Type: types.Integer}},
		DOP:   4,
	}
	if tab := runAll(t, par); tab.Len() != 0 {
		t.Errorf("empty left produced %d rows", tab.Len())
	}
}

func TestParallelApplySharedCacheSingleInvocation(t *testing.T) {
	// Eight identical arguments under DOP 4 with a shared cache: exactly
	// one underlying invocation; every worker sees the same table.
	var calls atomic.Int64
	fn := &fnTableFunc{name: "F", fn: func(args []types.Value) (*types.Table, error) {
		calls.Add(1)
		out := types.NewTable(intSchema("y"))
		out.MustAppend(types.Row{types.NewInt(args[0].Int() * 2)})
		return out, nil
	}}
	par := &ParallelApply{
		Left:  &Values{Sch: intSchema("l"), Rows: intRows(7, 7, 7, 7, 7, 7, 7, 7)},
		Right: &FuncScan{Fn: fn, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")},
		Sch:   types.Schema{{Name: "l", Type: types.Integer}, {Name: "y", Type: types.Integer}},
		DOP:   4,
	}
	fc := NewFuncCache()
	tab, err := Run(par, &Ctx{Task: simlat.Free(), FuncCache: fc})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Errorf("%d underlying calls, want 1", calls.Load())
	}
	if tab.Len() != 8 || tab.Rows[3][1].Int() != 14 {
		t.Errorf("bad result:\n%s", tab)
	}
	if st := fc.Snapshot(); st.Total() != 8 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 miss in 8 lookups", st)
	}
}

func TestFuncCacheSingleflight(t *testing.T) {
	const n = 8
	fc := NewFuncCache()
	args := []types.Value{types.NewInt(42)}
	tab := types.NewTable(intSchema("y"))
	var calls atomic.Int64
	block := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*types.Table, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := fc.Invoke("fn", args, func() (*types.Table, error) {
				calls.Add(1)
				<-block
				return tab, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = got
		}(i)
	}
	// Wait until every goroutine has either started the call or joined it,
	// then release the in-flight invocation.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := fc.Snapshot()
		if st.Misses == 1 && st.Coalesced == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for coalescing, stats %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("%d underlying calls, want 1", calls.Load())
	}
	for i, got := range results {
		if got != tab {
			t.Errorf("goroutine %d got a different table", i)
		}
	}
	// A lookup after completion is a plain hit.
	if _, err := fc.Invoke("fn", args, func() (*types.Table, error) {
		t.Error("unexpected invocation")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := fc.Snapshot(); st.Hits != 1 || st.Misses != 1 || st.Coalesced != n-1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFuncCacheCachesErrors(t *testing.T) {
	fc := NewFuncCache()
	boom := errors.New("boom")
	calls := 0
	invoke := func() (*types.Table, error) {
		if _, err := fc.Invoke("f", []types.Value{types.NewInt(1)}, func() (*types.Table, error) {
			calls++
			return nil, boom
		}); !errors.Is(err, boom) {
			return nil, fmt.Errorf("err = %v, want boom", err)
		}
		return nil, nil
	}
	if _, err := invoke(); err != nil {
		t.Fatal(err)
	}
	if _, err := invoke(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("%d calls, want 1 (errors cached within the statement)", calls)
	}
}

// closeTracker wraps an operator and records whether Close was called.
type closeTracker struct {
	Operator
	closed bool
}

func (c *closeTracker) Close() error {
	c.closed = true
	return c.Operator.Close()
}

func (c *closeTracker) Clone() Operator { return &closeTracker{Operator: c.Operator.Clone()} }

func TestRunClosesRootOnError(t *testing.T) {
	boom := errors.New("boom")
	// Right side fails on the second outer row, mid-iteration.
	fn := &fnTableFunc{name: "F", fn: func(args []types.Value) (*types.Table, error) {
		if args[0].Int() == 2 {
			return nil, boom
		}
		return fanOut(args)
	}}
	left := &closeTracker{Operator: &Values{Sch: intSchema("l"), Rows: intRows(1, 2, 3)}}
	apply := &Apply{
		Left:  left,
		Right: &FuncScan{Fn: fn, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")},
		Sch:   types.Schema{{Name: "l", Type: types.Integer}, {Name: "y", Type: types.Integer}},
	}
	root := &closeTracker{Operator: apply}
	if _, err := Run(root, &Ctx{Task: simlat.Free()}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if !root.closed || !left.closed {
		t.Errorf("leak: root closed %v, left closed %v", root.closed, left.closed)
	}

	// Same regression through LeftApply.
	left2 := &closeTracker{Operator: &Values{Sch: intSchema("l"), Rows: intRows(1, 2, 3)}}
	la := &LeftApply{
		Left:  left2,
		Right: &FuncScan{Fn: fn, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")},
		Sch:   types.Schema{{Name: "l", Type: types.Integer}, {Name: "y", Type: types.Integer}},
	}
	if _, err := Run(la, &Ctx{Task: simlat.Free()}); !errors.Is(err, boom) {
		t.Fatalf("LeftApply err = %v, want %v", err, boom)
	}
	if !left2.closed {
		t.Error("LeftApply leaked its left operator on a right-side error")
	}

	// Root Open failure also closes the root.
	failing := &closeTracker{Operator: &FuncScan{
		Fn:   &fnTableFunc{name: "F", fn: func([]types.Value) (*types.Table, error) { return nil, boom }},
		Args: []Expr{Const{V: types.NewInt(1)}}, Sch: intSchema("y"),
	}}
	if _, err := Run(failing, &Ctx{Task: simlat.Free()}); !errors.Is(err, boom) {
		t.Fatalf("open err = %v, want %v", err, boom)
	}
	if !failing.closed {
		t.Error("Run leaked the root on an Open error")
	}
}
