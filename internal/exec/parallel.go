package exec

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"fedwf/internal/exec/batcher"
	"fedwf/internal/obs"
	"fedwf/internal/obs/stats"
	"fedwf/internal/simlat"
	"fedwf/internal/types"
)

// ParallelApply is the parallel form of Apply/LeftApply: it drains the
// left side, fans the outer rows out to a bounded worker pool, opens an
// independent clone of the right side per worker, and merges the results
// preserving left-row order. The planner only emits it when the right
// side is side-effect-free, so per-worker clones may run concurrently.
//
// Rows are partitioned statically: worker w handles left rows w, w+dop,
// w+2*dop, ... This keeps the work distribution — and therefore the
// virtual-clock elapsed time and the function-cache statistics —
// deterministic for a given (input, dop) pair, unlike a shared work
// queue. Each worker runs on a simlat Fork branch and the operator Joins
// them, so virtual-clock mode reports the max-branch (parallel) elapsed
// time while wall mode gets real speedup.
type ParallelApply struct {
	Left, Right Operator
	Sch         types.Schema
	// DOP bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	DOP int
	// Independent marks a right side without lateral references; the
	// operator then charges the composition cost, mirroring Apply.
	Independent bool
	// Outer selects LEFT OUTER semantics: left rows with no matching
	// right row are emitted once, NULL-padded.
	Outer bool
	// On filters matches in Outer mode; evaluated over leftRow ++
	// rightRow, nil matches all. Mirrors LeftApply.On.
	On Expr
	// Batch, when enabled and the right side is a bare FuncScan, makes
	// each worker accumulate its partition's outer rows into chunks
	// flushed as one set-oriented invocation each: batching amortizes the
	// per-call overheads that parallelism only hides.
	Batch batcher.Policy
	// Stats, when set by Instrument, receives per-worker utilization
	// (work charged to each branch); clones share it.
	Stats *OpStats

	rows []types.Row
	pos  int
}

// Schema implements Operator.
func (a *ParallelApply) Schema() types.Schema { return a.Sch }

func (a *ParallelApply) effectiveDOP() int {
	if a.DOP > 0 {
		return a.DOP
	}
	return runtime.GOMAXPROCS(0)
}

// Open implements Operator. All work happens here: the left side is
// drained, the per-row right-side scans run on the worker pool, and the
// merged result is buffered for Next.
func (a *ParallelApply) Open(ctx *Ctx, bind types.Row) error {
	a.rows = nil
	a.pos = 0
	if a.Independent {
		ctx.Task.Step(simlat.StepJoinComposition, ctx.CompositionCost)
	}
	if err := a.Left.Open(ctx, bind); err != nil {
		a.Left.Close()
		return err
	}
	var leftRows []types.Row
	for {
		lr, err := a.Left.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			a.Left.Close()
			return err
		}
		leftRows = append(leftRows, lr)
	}
	a.Left.Close()
	if len(leftRows) == 0 {
		return nil
	}

	workers := a.effectiveDOP()
	if workers > len(leftRows) {
		workers = len(leftRows)
	}
	rights := make([]Operator, workers)
	rights[0] = a.Right
	for w := 1; w < workers; w++ {
		rights[w] = a.Right.Clone()
	}
	branches := ctx.Task.ForkN(workers)

	results := make([][]types.Row, len(leftRows))
	var (
		stop   atomic.Bool
		mu     sync.Mutex
		errIdx = len(leftRows)
		first  error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp := obs.StartSpan(branches[w], "exec.worker", obs.Attr{Key: "worker", Value: strconv.Itoa(w)})
			defer sp.End(branches[w])
			wctx := &Ctx{
				Task:            branches[w],
				Runner:          ctx.Runner,
				CompositionCost: ctx.CompositionCost,
				FuncCache:       ctx.FuncCache,
				Context:         ctx.Context,
				Warnings:        ctx.Warnings,
				AllowDegraded:   ctx.AllowDegraded,
			}
			// Report the error the sequential plan would have hit
			// first: the one at the lowest left-row index.
			fail := func(idx int, err error) {
				mu.Lock()
				if idx < errIdx {
					errIdx = idx
					first = err
				}
				mu.Unlock()
				stop.Store(true)
			}
			if fs := asFuncScan(rights[w]); fs != nil && a.Batch.Enabled() {
				a.workerBatched(fs, wctx, bind, leftRows, results, w, workers, &stop, fail)
				return
			}
			for idx := w; idx < len(leftRows); idx += workers {
				if stop.Load() {
					return
				}
				out, err := a.applyOne(rights[w], wctx, bind, leftRows[idx])
				if err != nil {
					fail(idx, err)
					return
				}
				results[idx] = out
			}
		}(w)
	}
	wg.Wait()
	if a.Stats != nil {
		for w, b := range branches {
			a.Stats.addWorker(w, b.Spent())
		}
	}
	ctx.Task.Join(branches...)
	if first != nil {
		return first
	}
	n := 0
	for _, rs := range results {
		n += len(rs)
	}
	a.rows = make([]types.Row, 0, n)
	for _, rs := range results {
		a.rows = append(a.rows, rs...)
	}
	return nil
}

// workerBatched is one worker's batched loop: its static partition of the
// outer rows accumulates into chunks under the batch policy (measured on
// the worker's own virtual branch), each chunk flushing as one
// set-oriented invocation. The chunk is the resilience unit — a
// degradable failure NULL-pads every outer row of the chunk in Outer
// mode.
func (a *ParallelApply) workerBatched(fs *FuncScan, wctx *Ctx, bind types.Row, leftRows []types.Row, results [][]types.Row, w, workers int, stop *atomic.Bool, fail func(int, error)) {
	bat := batcher.New(a.Batch)
	var chunk []int
	flush := func() bool {
		if len(chunk) == 0 {
			return true
		}
		bat.Flush()
		binds := make([]types.Row, len(chunk))
		for j, idx := range chunk {
			cb := make(types.Row, 0, len(bind)+len(leftRows[idx]))
			cb = append(cb, bind...)
			cb = append(cb, leftRows[idx]...)
			binds[j] = cb
		}
		stats.FromContext(wctx.Context).AddBatch(len(binds), a.Batch.Count)
		tabs, err := fs.invokeBatch(wctx, binds)
		if err != nil {
			if degrade(wctx, a.Outer, err) {
				for _, idx := range chunk {
					results[idx] = []types.Row{padNullRow(leftRows[idx], fs.Schema())}
				}
				chunk = chunk[:0]
				return true
			}
			fail(chunk[0], err)
			return false
		}
		for j, idx := range chunk {
			rows, err := joinLateralRows(leftRows[idx], tabs[j], a.On, a.Outer, fs.Schema())
			if err != nil {
				fail(idx, err)
				return false
			}
			results[idx] = rows
		}
		chunk = chunk[:0]
		return true
	}
	for idx := w; idx < len(leftRows); idx += workers {
		if stop.Load() {
			return
		}
		if err := wctx.check(); err != nil {
			fail(idx, err)
			return
		}
		chunk = append(chunk, idx)
		if bat.Add(batcher.RowBytes(leftRows[idx]), wctx.Task.Elapsed()) != batcher.TriggerNone {
			if !flush() {
				return
			}
		}
	}
	flush()
}

// applyOne runs the right side for one outer row and returns the joined
// output rows, applying On filtering and Outer NULL padding.
func (a *ParallelApply) applyOne(right Operator, wctx *Ctx, bind, lr types.Row) ([]types.Row, error) {
	if err := wctx.check(); err != nil {
		return nil, err
	}
	childBind := make(types.Row, 0, len(bind)+len(lr))
	childBind = append(childBind, bind...)
	childBind = append(childBind, lr...)
	if err := right.Open(wctx, childBind); err != nil {
		right.Close()
		if degrade(wctx, a.Outer, err) {
			row := make(types.Row, 0, len(lr)+len(right.Schema()))
			row = append(row, lr...)
			for range right.Schema() {
				row = append(row, types.Null)
			}
			return []types.Row{row}, nil
		}
		return nil, err
	}
	defer right.Close()
	var out []types.Row
	matched := false
	for {
		rr, err := right.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		row := make(types.Row, 0, len(lr)+len(rr))
		row = append(row, lr...)
		row = append(row, rr...)
		if a.On != nil {
			v, err := a.On.Eval(row)
			if err != nil {
				return nil, err
			}
			ok, err := Truthy(v)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		matched = true
		out = append(out, row)
	}
	if a.Outer && !matched {
		row := make(types.Row, 0, len(lr)+len(right.Schema()))
		row = append(row, lr...)
		for range right.Schema() {
			row = append(row, types.Null)
		}
		out = append(out, row)
	}
	return out, nil
}

// Next implements Operator.
func (a *ParallelApply) Next() (types.Row, error) {
	if a.pos >= len(a.rows) {
		return nil, io.EOF
	}
	r := a.rows[a.pos]
	a.pos++
	return r, nil
}

// Close implements Operator.
func (a *ParallelApply) Close() error {
	a.rows = nil
	a.pos = 0
	return nil
}

// Describe implements Operator.
func (a *ParallelApply) Describe() string {
	name := "ParallelApply"
	if a.Outer {
		name = "ParallelLeftApply"
	}
	s := fmt.Sprintf("%s (dop=%d)", name, a.effectiveDOP())
	if a.Batch.Enabled() {
		s += fmt.Sprintf(" (batch=%s)", a.Batch)
	}
	if a.On != nil {
		s += " on " + a.On.String()
	}
	return s
}

// Children implements Operator.
func (a *ParallelApply) Children() []Operator { return []Operator{a.Left, a.Right} }

// Clone implements Operator.
func (a *ParallelApply) Clone() Operator {
	return &ParallelApply{
		Left: a.Left.Clone(), Right: a.Right.Clone(), Sch: a.Sch,
		DOP: a.DOP, Independent: a.Independent, Outer: a.Outer, On: a.On,
		Batch: a.Batch, Stats: a.Stats,
	}
}
