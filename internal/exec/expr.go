// Package exec implements the FDBS's Volcano-style query executor:
// compiled scalar expressions, iterators for scans, lateral application
// (the mechanism behind the paper's dependency-ordered UDTF execution),
// joins, aggregation, sorting, and the glue to table functions.
package exec

import (
	"fmt"
	"strings"

	"fedwf/internal/types"
)

// Expr is a compiled scalar expression evaluated against one row. Column
// positions were resolved at plan time, so evaluation needs no catalog.
type Expr interface {
	Eval(row types.Row) (types.Value, error)
	String() string
}

// Const is a literal value.
type Const struct{ V types.Value }

// Eval implements Expr.
func (c Const) Eval(types.Row) (types.Value, error) { return c.V, nil }

func (c Const) String() string { return c.V.String() }

// Col reads a column by resolved position; Name is retained for display.
type Col struct {
	Idx  int
	Name string
}

// Eval implements Expr.
func (c Col) Eval(row types.Row) (types.Value, error) {
	if c.Idx < 0 || c.Idx >= len(row) {
		return types.Null, fmt.Errorf("exec: column %s (#%d) out of range for row of width %d", c.Name, c.Idx, len(row))
	}
	return row[c.Idx], nil
}

func (c Col) String() string { return fmt.Sprintf("%s#%d", c.Name, c.Idx) }

// Unary applies NOT or unary minus.
type Unary struct {
	Op string // "NOT" | "-"
	X  Expr
}

// Eval implements Expr.
func (u Unary) Eval(row types.Row) (types.Value, error) {
	v, err := u.X.Eval(row)
	if err != nil {
		return types.Null, err
	}
	switch u.Op {
	case "-":
		return types.Neg(v)
	case "NOT":
		if v.IsNull() {
			return types.Null, nil
		}
		b, err := v.AsBool()
		if err != nil {
			return types.Null, err
		}
		return types.NewBool(!b), nil
	default:
		return types.Null, fmt.Errorf("exec: unknown unary operator %q", u.Op)
	}
}

func (u Unary) String() string { return "(" + u.Op + " " + u.X.String() + ")" }

// Bin applies an infix operator with SQL three-valued logic for booleans
// and NULL propagation for arithmetic and comparisons.
type Bin struct {
	Op   string
	L, R Expr
}

// Eval implements Expr.
func (b Bin) Eval(row types.Row) (types.Value, error) {
	switch b.Op {
	case "AND", "OR":
		return b.evalLogical(row)
	}
	l, err := b.L.Eval(row)
	if err != nil {
		return types.Null, err
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return types.Null, err
	}
	switch b.Op {
	case "+":
		return types.Add(l, r)
	case "-":
		return types.Sub(l, r)
	case "*":
		return types.Mul(l, r)
	case "/":
		return types.Div(l, r)
	case "%":
		return types.Mod(l, r)
	case "||":
		return types.Concat(l, r)
	case "=", "<>", "<", "<=", ">", ">=":
		c, err := types.Compare(l, r)
		if err == types.ErrNullCompare {
			return types.Null, nil
		}
		if err != nil {
			return types.Null, err
		}
		var out bool
		switch b.Op {
		case "=":
			out = c == 0
		case "<>":
			out = c != 0
		case "<":
			out = c < 0
		case "<=":
			out = c <= 0
		case ">":
			out = c > 0
		case ">=":
			out = c >= 0
		}
		return types.NewBool(out), nil
	default:
		return types.Null, fmt.Errorf("exec: unknown operator %q", b.Op)
	}
}

// evalLogical implements Kleene three-valued AND/OR with short circuits.
func (b Bin) evalLogical(row types.Row) (types.Value, error) {
	l, err := b.L.Eval(row)
	if err != nil {
		return types.Null, err
	}
	lb, lnull := false, l.IsNull()
	if !lnull {
		if lb, err = l.AsBool(); err != nil {
			return types.Null, err
		}
	}
	if b.Op == "AND" && !lnull && !lb {
		return types.NewBool(false), nil
	}
	if b.Op == "OR" && !lnull && lb {
		return types.NewBool(true), nil
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return types.Null, err
	}
	rb, rnull := false, r.IsNull()
	if !rnull {
		if rb, err = r.AsBool(); err != nil {
			return types.Null, err
		}
	}
	switch b.Op {
	case "AND":
		switch {
		case !rnull && !rb:
			return types.NewBool(false), nil
		case lnull || rnull:
			return types.Null, nil
		default:
			return types.NewBool(true), nil
		}
	default: // OR
		switch {
		case !rnull && rb:
			return types.NewBool(true), nil
		case lnull || rnull:
			return types.Null, nil
		default:
			return types.NewBool(false), nil
		}
	}
}

func (b Bin) String() string { return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")" }

// Cast converts to a target type.
type Cast struct {
	X    Expr
	Type types.Type
}

// Eval implements Expr.
func (c Cast) Eval(row types.Row) (types.Value, error) {
	v, err := c.X.Eval(row)
	if err != nil {
		return types.Null, err
	}
	return types.Cast(v, c.Type)
}

func (c Cast) String() string { return "CAST(" + c.X.String() + " AS " + c.Type.String() + ")" }

// IsNull tests for SQL NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// Eval implements Expr.
func (i IsNull) Eval(row types.Row) (types.Value, error) {
	v, err := i.X.Eval(row)
	if err != nil {
		return types.Null, err
	}
	return types.NewBool(v.IsNull() != i.Not), nil
}

func (i IsNull) String() string {
	if i.Not {
		return "(" + i.X.String() + " IS NOT NULL)"
	}
	return "(" + i.X.String() + " IS NULL)"
}

// Between tests lo <= x <= hi with NULL propagation.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

// Eval implements Expr.
func (b Between) Eval(row types.Row) (types.Value, error) {
	x, err := b.X.Eval(row)
	if err != nil {
		return types.Null, err
	}
	lo, err := b.Lo.Eval(row)
	if err != nil {
		return types.Null, err
	}
	hi, err := b.Hi.Eval(row)
	if err != nil {
		return types.Null, err
	}
	c1, err1 := types.Compare(x, lo)
	c2, err2 := types.Compare(x, hi)
	if err1 == types.ErrNullCompare || err2 == types.ErrNullCompare {
		return types.Null, nil
	}
	if err1 != nil {
		return types.Null, err1
	}
	if err2 != nil {
		return types.Null, err2
	}
	in := c1 >= 0 && c2 <= 0
	return types.NewBool(in != b.Not), nil
}

func (b Between) String() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return "(" + b.X.String() + " " + not + "BETWEEN " + b.Lo.String() + " AND " + b.Hi.String() + ")"
}

// In tests membership in an expression list, with SQL NULL semantics:
// if no element matches but some comparison was NULL, the result is NULL.
type In struct {
	X    Expr
	List []Expr
	Not  bool
}

// Eval implements Expr.
func (i In) Eval(row types.Row) (types.Value, error) {
	x, err := i.X.Eval(row)
	if err != nil {
		return types.Null, err
	}
	sawNull := x.IsNull()
	for _, e := range i.List {
		v, err := e.Eval(row)
		if err != nil {
			return types.Null, err
		}
		c, err := types.Compare(x, v)
		if err == types.ErrNullCompare {
			sawNull = true
			continue
		}
		if err != nil {
			return types.Null, err
		}
		if c == 0 {
			return types.NewBool(!i.Not), nil
		}
	}
	if sawNull {
		return types.Null, nil
	}
	return types.NewBool(i.Not), nil
}

func (i In) String() string {
	parts := make([]string, len(i.List))
	for j, e := range i.List {
		parts[j] = e.String()
	}
	not := ""
	if i.Not {
		not = "NOT "
	}
	return "(" + i.X.String() + " " + not + "IN (" + strings.Join(parts, ", ") + "))"
}

// Like matches SQL patterns with % (any run) and _ (any single byte).
type Like struct {
	X, Pattern Expr
	Not        bool
}

// Eval implements Expr.
func (l Like) Eval(row types.Row) (types.Value, error) {
	x, err := l.X.Eval(row)
	if err != nil {
		return types.Null, err
	}
	p, err := l.Pattern.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if x.IsNull() || p.IsNull() {
		return types.Null, nil
	}
	xs, err := x.AsString()
	if err != nil {
		return types.Null, err
	}
	ps, err := p.AsString()
	if err != nil {
		return types.Null, err
	}
	return types.NewBool(likeMatch(xs, ps) != l.Not), nil
}

func (l Like) String() string {
	not := ""
	if l.Not {
		not = "NOT "
	}
	return "(" + l.X.String() + " " + not + "LIKE " + l.Pattern.String() + ")"
}

// likeMatch implements %/_ globbing with backtracking on %.
func likeMatch(s, p string) bool {
	si, pi := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			mark++
			si = mark
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// Case is a searched CASE expression.
type Case struct {
	Whens []struct {
		Cond, Result Expr
	}
	Else Expr // may be nil -> NULL
}

// Eval implements Expr.
func (c Case) Eval(row types.Row) (types.Value, error) {
	for _, w := range c.Whens {
		v, err := w.Cond.Eval(row)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() {
			continue
		}
		b, err := v.AsBool()
		if err != nil {
			return types.Null, err
		}
		if b {
			return w.Result.Eval(row)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(row)
	}
	return types.Null, nil
}

func (c Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		b.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Result.String())
	}
	if c.Else != nil {
		b.WriteString(" ELSE " + c.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// ScalarCall applies a built-in scalar function.
type ScalarCall struct {
	Name string
	Fn   ScalarFunc
	Args []Expr
}

// Eval implements Expr.
func (s ScalarCall) Eval(row types.Row) (types.Value, error) {
	args := make([]types.Value, len(s.Args))
	for i, a := range s.Args {
		v, err := a.Eval(row)
		if err != nil {
			return types.Null, err
		}
		args[i] = v
	}
	return s.Fn(args)
}

func (s ScalarCall) String() string {
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		parts[i] = a.String()
	}
	return s.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Truthy maps a predicate result to a match decision: NULL is not a match.
func Truthy(v types.Value) (bool, error) {
	if v.IsNull() {
		return false, nil
	}
	return v.AsBool()
}
