package exec

import (
	"context"
	"errors"
	"sync"
	"testing"

	"fedwf/internal/catalog"
	"fedwf/internal/exec/batcher"
	"fedwf/internal/resil"
	"fedwf/internal/simlat"
	"fedwf/internal/types"
)

// batchFnTableFunc is a catalog.BatchTableFunc recording every batch it
// receives, so tests can assert how many wire rows actually travelled.
type batchFnTableFunc struct {
	fnTableFunc
	err error // when set, every InvokeBatch fails the whole batch

	mu      sync.Mutex
	batches [][][]types.Value
}

func (f *batchFnTableFunc) InvokeBatch(ctx context.Context, rt catalog.QueryRunner, task *simlat.Task, rows [][]types.Value) ([]*types.Table, error) {
	cp := make([][]types.Value, len(rows))
	copy(cp, rows)
	f.mu.Lock()
	f.batches = append(f.batches, cp)
	f.mu.Unlock()
	if f.err != nil {
		return nil, f.err
	}
	out := make([]*types.Table, len(rows))
	for i, r := range rows {
		tab, err := f.fn(r)
		if err != nil {
			return nil, err
		}
		out[i] = tab
	}
	return out, nil
}

// batchSizes flattens the recorded batches to their row counts.
func (f *batchFnTableFunc) batchSizes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int, len(f.batches))
	for i, b := range f.batches {
		out[i] = len(b)
	}
	return out
}

func lateralSchema() types.Schema {
	return types.Schema{{Name: "l", Type: types.Integer}, {Name: "y", Type: types.Integer}}
}

func TestApplyBatchedMatchesPerRow(t *testing.T) {
	left := intRows(seqInts(10)...)
	mk := func(fn catalog.TableFunc, pol batcher.Policy) Operator {
		return &Apply{
			Left:  &Values{Sch: intSchema("l"), Rows: left},
			Right: &FuncScan{Fn: fn, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")},
			Sch:   lateralSchema(),
			Batch: pol,
		}
	}
	want := runAll(t, mk(&fnTableFunc{name: "F", fn: fanOut}, batcher.Policy{}))
	bf := &batchFnTableFunc{fnTableFunc: fnTableFunc{name: "F", fn: fanOut}}
	got := runAll(t, mk(bf, batcher.Policy{Count: 4}))
	if got.String() != want.String() {
		t.Fatalf("batched mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	sizes := bf.batchSizes()
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 4 || sizes[2] != 2 {
		t.Errorf("batch sizes = %v, want [4 4 2]", sizes)
	}
}

func TestLeftApplyBatchedMatchesPerRow(t *testing.T) {
	left := intRows(seqInts(12)...)
	// fanOut leaves every l%3==0 row unmatched; the filter drops more.
	on := Bin{Op: ">", L: Col{Idx: 0, Name: "l"}, R: Const{V: types.NewInt(3)}}
	mk := func(fn catalog.TableFunc, pol batcher.Policy) Operator {
		return &LeftApply{
			Left:  &Values{Sch: intSchema("l"), Rows: left},
			Right: &FuncScan{Fn: fn, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")},
			On:    on,
			Sch:   lateralSchema(),
			Batch: pol,
		}
	}
	want := runAll(t, mk(&fnTableFunc{name: "F", fn: fanOut}, batcher.Policy{}))
	bf := &batchFnTableFunc{fnTableFunc: fnTableFunc{name: "F", fn: fanOut}}
	got := runAll(t, mk(bf, batcher.Policy{Count: 5}))
	if got.String() != want.String() {
		t.Fatalf("batched mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestParallelApplyBatchedMatchesSequential(t *testing.T) {
	left := intRows(seqInts(16)...)
	seq := &Apply{
		Left:  &Values{Sch: intSchema("l"), Rows: left},
		Right: &FuncScan{Fn: &fnTableFunc{name: "F", fn: fanOut}, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")},
		Sch:   lateralSchema(),
	}
	want := runAll(t, seq)
	for _, dop := range []int{1, 2, 4} {
		bf := &batchFnTableFunc{fnTableFunc: fnTableFunc{name: "F", fn: fanOut}}
		par := &ParallelApply{
			Left:  &Values{Sch: intSchema("l"), Rows: left},
			Right: &FuncScan{Fn: bf, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")},
			Sch:   lateralSchema(),
			DOP:   dop,
			Batch: batcher.Policy{Count: 3},
		}
		got := runAll(t, par)
		if got.String() != want.String() {
			t.Fatalf("dop=%d batched mismatch:\ngot:\n%s\nwant:\n%s", dop, got, want)
		}
		for _, n := range bf.batchSizes() {
			if n > 3 {
				t.Errorf("dop=%d: batch of %d rows exceeds policy", dop, n)
			}
		}
	}
}

func TestBatchedCacheServesHitsWithoutWire(t *testing.T) {
	fc := NewFuncCache()
	warm := func(v int64) *types.Table {
		tab, err := fc.Invoke("F", []types.Value{types.NewInt(v)}, func() (*types.Table, error) {
			return fanOut([]types.Value{types.NewInt(v)})
		})
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	warm(7) // 7%3 = 1 row
	warm(8) // 8%3 = 2 rows

	bf := &batchFnTableFunc{fnTableFunc: fnTableFunc{name: "F", fn: fanOut}}
	ap := &Apply{
		Left:  &Values{Sch: intSchema("l"), Rows: intRows(7, 1, 8, 2)},
		Right: &FuncScan{Fn: bf, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")},
		Sch:   lateralSchema(),
		Batch: batcher.Policy{Count: 8},
	}
	tab, err := Run(ap, &Ctx{Task: simlat.Free(), FuncCache: fc})
	if err != nil {
		t.Fatal(err)
	}
	// 7 -> 1 row, 1 -> 1 row, 8 -> 2 rows, 2 -> 2 rows.
	if tab.Len() != 6 {
		t.Fatalf("got %d rows, want 6:\n%s", tab.Len(), tab)
	}
	// Only the cold keys 1 and 2 may travel; the warmed 7 and 8 are served
	// from the cache without joining the flush.
	if len(bf.batches) != 1 || len(bf.batches[0]) != 2 {
		t.Fatalf("wire batches = %v, want one batch of the 2 cold keys", bf.batches)
	}
	if bf.batches[0][0][0].Int() != 1 || bf.batches[0][1][0].Int() != 2 {
		t.Errorf("wire rows = %v, want keys 1 and 2", bf.batches[0])
	}
	if st := fc.Snapshot(); st.Hits != 2 || st.Misses != 4 || st.Coalesced != 0 {
		t.Errorf("stats = %+v, want 2 hits (warm keys), 4 misses (2 warmup + 2 cold)", st)
	}
}

func TestBatchedDuplicateKeysCoalesceToOneWireRow(t *testing.T) {
	fc := NewFuncCache()
	bf := &batchFnTableFunc{fnTableFunc: fnTableFunc{name: "F", fn: fanOut}}
	ap := &Apply{
		Left:  &Values{Sch: intSchema("l"), Rows: intRows(5, 5, 5, 7)},
		Right: &FuncScan{Fn: bf, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")},
		Sch:   lateralSchema(),
		Batch: batcher.Policy{Count: 8},
	}
	tab, err := Run(ap, &Ctx{Task: simlat.Free(), FuncCache: fc})
	if err != nil {
		t.Fatal(err)
	}
	// 5 -> 2 rows each (x3 outer), 7 -> 1 row.
	if tab.Len() != 7 {
		t.Fatalf("got %d rows, want 7:\n%s", tab.Len(), tab)
	}
	if len(bf.batches) != 1 || len(bf.batches[0]) != 2 {
		t.Fatalf("wire batches = %v, want one batch with the 2 distinct keys", bf.batches)
	}
	if st := fc.Snapshot(); st.Misses != 2 || st.Coalesced != 2 {
		t.Errorf("stats = %+v, want 2 misses and 2 coalesced duplicates", st)
	}
}

func TestParallelBatchedSharedCacheInvokesEachKeyOnce(t *testing.T) {
	// 16 outer rows over only 4 distinct keys, DOP 4, shared cache: every
	// key must travel exactly once across all workers' batches.
	var rows []int64
	for i := int64(0); i < 16; i++ {
		rows = append(rows, i%4+1)
	}
	fc := NewFuncCache()
	bf := &batchFnTableFunc{fnTableFunc: fnTableFunc{name: "F", fn: fanOut}}
	par := &ParallelApply{
		Left:  &Values{Sch: intSchema("l"), Rows: intRows(rows...)},
		Right: &FuncScan{Fn: bf, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")},
		Sch:   lateralSchema(),
		DOP:   4,
		Batch: batcher.Policy{Count: 2},
	}
	tab, err := Run(par, &Ctx{Task: simlat.Free(), FuncCache: fc})
	if err != nil {
		t.Fatal(err)
	}
	// fanOut: 1->1, 2->2, 3->0, 4->1 rows, four outer rows per key.
	if tab.Len() != 16 {
		t.Fatalf("got %d rows, want 16:\n%s", tab.Len(), tab)
	}
	wire := 0
	for _, n := range bf.batchSizes() {
		wire += n
	}
	if wire != 4 {
		t.Errorf("%d wire rows across batches, want 4 (one per distinct key)", wire)
	}
	if st := fc.Snapshot(); st.Misses != 4 || st.Hits+st.Coalesced != 12 {
		t.Errorf("stats = %+v, want 4 misses and 12 hits+coalesced", st)
	}
}

func TestLeftApplyBatchedDegradePadsChunk(t *testing.T) {
	bf := &batchFnTableFunc{
		fnTableFunc: fnTableFunc{name: "F", fn: fanOut},
		err:         resil.ErrAppSysUnavailable,
	}
	la := &LeftApply{
		Left:  &Values{Sch: intSchema("l"), Rows: intRows(1, 2, 3)},
		Right: &FuncScan{Fn: bf, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")},
		Sch:   lateralSchema(),
		Batch: batcher.Policy{Count: 8},
	}
	warns := &Warnings{}
	tab, err := Run(la, &Ctx{Task: simlat.Free(), AllowDegraded: true, Warnings: warns})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 {
		t.Fatalf("got %d rows, want the whole chunk NULL-padded:\n%s", tab.Len(), tab)
	}
	for i, r := range tab.Rows {
		if !r[1].IsNull() {
			t.Errorf("row %d = %v, want NULL pad", i, r)
		}
	}
	if !warns.Partial() {
		t.Error("degraded chunk did not mark the result partial")
	}

	// Without AllowDegraded the same failure fails the statement.
	la2 := &LeftApply{
		Left:  &Values{Sch: intSchema("l"), Rows: intRows(1, 2, 3)},
		Right: &FuncScan{Fn: bf, Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y")},
		Sch:   lateralSchema(),
		Batch: batcher.Policy{Count: 8},
	}
	if _, err := Run(la2, &Ctx{Task: simlat.Free()}); !errors.Is(err, resil.ErrAppSysUnavailable) {
		t.Fatalf("err = %v, want ErrAppSysUnavailable", err)
	}
}
