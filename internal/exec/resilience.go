package exec

import (
	"fmt"
	"sync"

	"fedwf/internal/resil"
)

// Warnings collects statement-level warnings — today, the graceful
// degradation notices emitted when an optional lateral branch is replaced
// by NULL padding because its application system is shedding. Safe for
// concurrent use (ParallelApply workers share one instance).
type Warnings struct {
	mu      sync.Mutex
	list    []string
	partial bool
}

// Add appends a warning.
func (w *Warnings) Add(msg string) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.list = append(w.list, msg)
	w.mu.Unlock()
}

// MarkPartial flags the result as partial and records why.
func (w *Warnings) MarkPartial(msg string) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.partial = true
	w.list = append(w.list, msg)
	w.mu.Unlock()
}

// Partial reports whether the result was degraded.
func (w *Warnings) Partial() bool {
	if w == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.partial
}

// List returns a copy of the collected warnings.
func (w *Warnings) List() []string {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.list...)
}

// degrade decides whether an outer (LEFT) lateral branch's failure may be
// absorbed as NULL padding: degradation must be enabled on the statement,
// the operator must have outer semantics (so a missing match already has
// defined NULL semantics), and the error must mark the downstream system
// as shedding or unreachable — never a semantic error. When absorbed, the
// statement's warnings are flagged partial.
func degrade(ctx *Ctx, outer bool, err error) bool {
	if ctx == nil || !ctx.AllowDegraded || !outer || !resil.Degradable(err) {
		return false
	}
	ctx.Warnings.MarkPartial(fmt.Sprintf("partial result: optional branch degraded: %v", err))
	return true
}
