package exec

import (
	"strings"
	"testing"
	"time"

	"fedwf/internal/simlat"
	"fedwf/internal/types"
)

func analyzeLateral(t *testing.T, dop int, cache bool, costs time.Duration) (string, Operator) {
	t.Helper()
	scan := &FuncScan{
		Fn:   &taskFnTableFunc{name: "F", cost: costs, fn: fanOut},
		Args: []Expr{Col{Idx: 0, Name: "l"}}, Sch: intSchema("y"),
	}
	leftOp := &Values{Sch: intSchema("l"), Rows: intRows(seqInts(16)...)}
	sch := types.Schema{{Name: "l", Type: types.Integer}, {Name: "y", Type: types.Integer}}
	var op Operator
	if dop > 1 {
		op = &ParallelApply{Left: leftOp, Right: scan, Sch: sch, DOP: dop}
	} else {
		op = &Apply{Left: leftOp, Right: scan, Sch: sch}
	}
	ctx := &Ctx{Task: simlat.NewVirtualTask()}
	if cache {
		ctx.FuncCache = NewFuncCache()
	}
	tab, root, err := RunAnalyze(op, ctx)
	if err != nil {
		t.Fatal(err)
	}
	// fanOut yields l%3 rows per outer row: 16 outer rows -> 15 rows total.
	if tab.Len() != 15 {
		t.Fatalf("result rows = %d, want 15", tab.Len())
	}
	return ExplainAnalyzeString(root), root
}

func TestAnalyzeCountsRowsAndLoops(t *testing.T) {
	out, root := analyzeLateral(t, 1, false, 0)
	an, ok := root.(*Analyzed)
	if !ok {
		t.Fatalf("root not Analyzed: %T", root)
	}
	if an.Stats.Rows.Load() != 15 || an.Stats.Opens.Load() != 1 {
		t.Errorf("root stats rows=%d loops=%d", an.Stats.Rows.Load(), an.Stats.Opens.Load())
	}
	// The lateral right side opens once per outer row.
	if !strings.Contains(out, "loops=16") {
		t.Errorf("FuncScan loop count missing:\n%s", out)
	}
	if !strings.Contains(out, "(actual rows=15 loops=1") {
		t.Errorf("root actuals missing:\n%s", out)
	}
}

func TestAnalyzeDeterministicInVirtualMode(t *testing.T) {
	a, _ := analyzeLateral(t, 1, false, 10*simlat.PaperMS)
	b, _ := analyzeLateral(t, 1, false, 10*simlat.PaperMS)
	if a != b {
		t.Errorf("virtual-mode EXPLAIN ANALYZE not deterministic:\n%s\nvs\n%s", a, b)
	}
	// Sequential: 16 invocations at 10ms charge 160ms on the scan node.
	if !strings.Contains(a, "time=160.0ms") {
		t.Errorf("scan busy time missing:\n%s", a)
	}
}

func TestAnalyzeParallelWorkerUtilization(t *testing.T) {
	out, root := analyzeLateral(t, 4, false, 10*simlat.PaperMS)
	var pa *ParallelApply
	var find func(o Operator)
	find = func(o Operator) {
		if p, ok := o.(*ParallelApply); ok {
			pa = p
			return
		}
		if an, ok := o.(*Analyzed); ok {
			find(an.Child)
			return
		}
		for _, c := range o.Children() {
			find(c)
		}
	}
	find(root)
	if pa == nil || pa.Stats == nil {
		t.Fatal("ParallelApply stats not wired")
	}
	ws := pa.Stats.Workers()
	if len(ws) != 4 {
		t.Fatalf("worker count = %d, want 4", len(ws))
	}
	// Static round-robin over 16 rows at 10ms each: every worker does
	// exactly 4 rows = 40ms, deterministically.
	for i, d := range ws {
		if d != 40*simlat.PaperMS {
			t.Errorf("worker %d utilization = %v, want 40ms", i, d)
		}
	}
	if !strings.Contains(out, "workers[w0=40.0ms w1=40.0ms w2=40.0ms w3=40.0ms]") {
		t.Errorf("per-worker rendering missing:\n%s", out)
	}
}

func TestAnalyzeCacheOutcomesPerOperator(t *testing.T) {
	// Duplicate arguments through a sequential lateral with the cache on:
	// 16 outer rows over 8 distinct keys -> 8 misses, 8 hits on the scan.
	scan := &FuncScan{
		Fn:   &fnTableFunc{name: "F", fn: fanOut},
		Args: []Expr{Bin{Op: "%", L: Col{Idx: 0, Name: "l"}, R: Const{V: types.NewInt(8)}}},
		Sch:  intSchema("y"),
	}
	leftOp := &Values{Sch: intSchema("l"), Rows: intRows(seqInts(16)...)}
	sch := types.Schema{{Name: "l", Type: types.Integer}, {Name: "y", Type: types.Integer}}
	op := &Apply{Left: leftOp, Right: scan, Sch: sch}
	ctx := &Ctx{Task: simlat.NewVirtualTask(), FuncCache: NewFuncCache()}
	_, root, err := RunAnalyze(op, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Stats == nil {
		t.Fatal("FuncScan stats not wired")
	}
	h, m, c := scan.Stats.CacheHits.Load(), scan.Stats.CacheMisses.Load(), scan.Stats.CacheCoalesced.Load()
	if h != 8 || m != 8 || c != 0 {
		t.Errorf("cache outcomes hits=%d misses=%d coalesced=%d, want 8/8/0", h, m, c)
	}
	if !strings.Contains(ExplainAnalyzeString(root), "cache(hits=8 misses=8 coalesced=0)") {
		t.Errorf("cache rendering missing:\n%s", ExplainAnalyzeString(root))
	}
}

func TestDrainCounts(t *testing.T) {
	op := &Values{Sch: intSchema("l"), Rows: intRows(seqInts(5)...)}
	n, err := Drain(op, &Ctx{Task: simlat.Free()})
	if err != nil || n != 5 {
		t.Errorf("Drain = %d, %v", n, err)
	}
}
