package batcher

import (
	"testing"
	"time"

	"fedwf/internal/types"
)

func TestCountTrigger(t *testing.T) {
	b := New(Policy{Count: 3})
	if got := b.Add(10, 0); got != TriggerNone {
		t.Fatalf("row 1: got %v, want none", got)
	}
	if got := b.Add(10, 0); got != TriggerNone {
		t.Fatalf("row 2: got %v, want none", got)
	}
	if got := b.Add(10, 0); got != TriggerCount {
		t.Fatalf("row 3: got %v, want count", got)
	}
	if b.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", b.Pending())
	}
	b.Flush()
	if b.Pending() != 0 {
		t.Fatalf("pending after flush = %d, want 0", b.Pending())
	}
	if got := b.Add(10, 0); got != TriggerNone {
		t.Fatalf("row after flush: got %v, want none", got)
	}
}

func TestBytesTrigger(t *testing.T) {
	b := New(Policy{Count: 100, Bytes: 50})
	if got := b.Add(20, 0); got != TriggerNone {
		t.Fatalf("20 bytes: got %v, want none", got)
	}
	if got := b.Add(35, 0); got != TriggerBytes {
		t.Fatalf("55 bytes: got %v, want bytes", got)
	}
}

func TestPeriodTriggerUsesVirtualTime(t *testing.T) {
	b := New(Policy{Count: 100, Period: 10 * time.Millisecond})
	if got := b.Add(1, 100*time.Millisecond); got != TriggerNone {
		t.Fatalf("first row: got %v, want none", got)
	}
	if got := b.Add(1, 105*time.Millisecond); got != TriggerNone {
		t.Fatalf("+5ms: got %v, want none", got)
	}
	if got := b.Add(1, 110*time.Millisecond); got != TriggerPeriod {
		t.Fatalf("+10ms: got %v, want period", got)
	}
	b.Flush()
	// The window restarts at the next first row.
	if got := b.Add(1, 115*time.Millisecond); got != TriggerNone {
		t.Fatalf("new window: got %v, want none", got)
	}
}

func TestDisabledPolicyFlushesEveryRow(t *testing.T) {
	for _, pol := range []Policy{{}, {Count: 1}} {
		b := New(pol)
		if got := b.Add(1, 0); got != TriggerCount {
			t.Fatalf("policy %+v: got %v, want count per row", pol, got)
		}
		b.Flush()
	}
}

func TestEnabled(t *testing.T) {
	cases := []struct {
		pol  Policy
		want bool
	}{
		{Policy{}, false},
		{Policy{Count: 1}, false},
		{Policy{Count: 2}, true},
		{Policy{Bytes: 1}, true},
		{Policy{Period: time.Millisecond}, true},
	}
	for _, c := range cases {
		if got := c.pol.Enabled(); got != c.want {
			t.Errorf("Enabled(%+v) = %v, want %v", c.pol, got, c.want)
		}
	}
}

func TestRowBytes(t *testing.T) {
	row := []types.Value{types.NewInt(7), types.NewString("abcd")}
	if got := RowBytes(row); got != 16+16+4 {
		t.Fatalf("RowBytes = %d, want 36", got)
	}
}

func TestPolicyString(t *testing.T) {
	if got := (Policy{}).String(); got != "off" {
		t.Fatalf("zero policy String = %q", got)
	}
	p := Policy{Count: 8, Bytes: 1024, Period: 5 * time.Millisecond}
	if got := p.String(); got != "count=8,bytes=1024,period=5ms" {
		t.Fatalf("String = %q", got)
	}
}
