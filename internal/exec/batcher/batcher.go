// Package batcher implements the executor's batch-formation policy: outer
// rows destined for the same federated call accumulate until a trigger
// fires, then flush as one set-oriented invocation. The policy follows the
// count/bytes/period triple popularised by stream processors (Benthos-style
// batch policies): whichever trigger fires first flushes the batch.
//
// The period trigger is measured on the statement's virtual clock
// (simlat.Task time), never the wall clock, so batched plans stay
// deterministic under the virtual-time experiments.
package batcher

import (
	"fmt"
	"time"

	"fedwf/internal/types"
)

// Policy says when an accumulating batch must flush. The zero value — and
// any Count below 2 with no byte or period bound — disables batching
// entirely: every row flushes alone, which is the legacy per-row path.
type Policy struct {
	// Count flushes after this many rows (0 or 1 leaves only the other
	// triggers; a batch never exceeds Count rows when Count >= 2).
	Count int
	// Bytes flushes once the estimated wire size of the accumulated
	// argument rows reaches this many bytes (0 disables the trigger).
	Bytes int
	// Period flushes once the virtual time elapsed since the first pending
	// row reaches this duration (0 disables the trigger).
	Period time.Duration
}

// Enabled reports whether the policy can ever hold more than one row.
func (p Policy) Enabled() bool {
	return p.Count >= 2 || p.Bytes > 0 || p.Period > 0
}

// String renders the active triggers for plan explanations.
func (p Policy) String() string {
	if !p.Enabled() {
		return "off"
	}
	s := ""
	if p.Count >= 2 {
		s = fmt.Sprintf("count=%d", p.Count)
	}
	if p.Bytes > 0 {
		if s != "" {
			s += ","
		}
		s += fmt.Sprintf("bytes=%d", p.Bytes)
	}
	if p.Period > 0 {
		if s != "" {
			s += ","
		}
		s += fmt.Sprintf("period=%s", p.Period)
	}
	return s
}

// Trigger says why a batch flushed.
type Trigger int

// Flush triggers, in evaluation order.
const (
	// TriggerNone means the batch may keep accumulating.
	TriggerNone Trigger = iota
	// TriggerCount fired the row-count bound.
	TriggerCount
	// TriggerBytes fired the byte-size bound.
	TriggerBytes
	// TriggerPeriod fired the virtual-time bound.
	TriggerPeriod
	// TriggerFinal is the end-of-input flush of a non-empty remainder.
	TriggerFinal
)

// String names the trigger.
func (t Trigger) String() string {
	switch t {
	case TriggerCount:
		return "count"
	case TriggerBytes:
		return "bytes"
	case TriggerPeriod:
		return "period"
	case TriggerFinal:
		return "final"
	default:
		return "none"
	}
}

// Batcher tracks one accumulating batch against a Policy. It holds no rows
// itself — the caller owns the buffered rows and asks the batcher, per
// appended row, whether the batch must flush now. Not safe for concurrent
// use; each ParallelApply worker owns its own Batcher.
type Batcher struct {
	pol   Policy
	count int
	bytes int
	first time.Duration
}

// New returns an empty batcher for the policy.
func New(pol Policy) *Batcher {
	return &Batcher{pol: pol}
}

// Policy returns the batcher's policy.
func (b *Batcher) Policy() Policy { return b.pol }

// Pending returns the number of rows accounted since the last Flush.
func (b *Batcher) Pending() int { return b.count }

// Add accounts one row of the given estimated size arriving at virtual
// instant now and reports which trigger, if any, requires the caller to
// flush the batch (including this row) before accepting more.
func (b *Batcher) Add(size int, now time.Duration) Trigger {
	if b.count == 0 {
		b.first = now
	}
	b.count++
	b.bytes += size
	if b.pol.Count >= 2 && b.count >= b.pol.Count {
		return TriggerCount
	}
	if b.pol.Bytes > 0 && b.bytes >= b.pol.Bytes {
		return TriggerBytes
	}
	if b.pol.Period > 0 && now-b.first >= b.pol.Period {
		return TriggerPeriod
	}
	if !b.pol.Enabled() {
		// Degenerate policy: every row is its own batch.
		return TriggerCount
	}
	return TriggerNone
}

// Flush resets the accumulation counters after the caller drained its
// buffered rows.
func (b *Batcher) Flush() {
	b.count = 0
	b.bytes = 0
	b.first = 0
}

// RowBytes estimates the wire size of one argument row: a fixed per-value
// header plus the rendered payload, mirroring the gob wireValue layout
// closely enough for the byte trigger to be meaningful.
func RowBytes(row []types.Value) int {
	n := 0
	for _, v := range row {
		n += 16
		if v.Kind() == types.KindString {
			n += len(v.Str())
		}
	}
	return n
}
