package exec

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"fedwf/internal/catalog"
	"fedwf/internal/exec/batcher"
	"fedwf/internal/obs"
	"fedwf/internal/resil"
	"fedwf/internal/simlat"
	"fedwf/internal/sqlparser"
	"fedwf/internal/storage"
	"fedwf/internal/types"
)

// Ctx carries per-execution state through the operator tree: the request's
// cost meter, the engine's runner for nested SQL (UDTF bodies), and the
// simulated cost of composing independent result sets (the paper's "join
// with selection", which makes the UDTF architecture's independent case
// slower than its sequential case).
type Ctx struct {
	Task            *simlat.Task
	Runner          catalog.QueryRunner
	CompositionCost time.Duration

	// FuncCache, when non-nil, memoises table-function results within one
	// statement execution: a lateral scan re-invoked with identical
	// arguments reuses the previous result instead of calling the foreign
	// function again. An optimizer extension beyond the paper (which
	// defers foreign-function query optimization to future work); enable
	// it with engine.SetFunctionCache.
	FuncCache *FuncCache

	// Context carries the statement's deadline and cancellation; operators
	// gate on it per outer row via resil.Check. May be nil (no deadline).
	Context context.Context

	// Warnings collects degradation notices; nil disables collection.
	Warnings *Warnings

	// AllowDegraded permits outer lateral operators to absorb degradable
	// failures (open breaker, unreachable system) as NULL padding instead
	// of failing the statement.
	AllowDegraded bool
}

// check gates one unit of operator work on the statement deadline.
func (c *Ctx) check() error {
	if c == nil {
		return nil
	}
	return resil.Check(c.Context, c.Task)
}

// FuncCache memoises (function, arguments) -> result within one statement.
// It is a singleflight cache: concurrent invocations with identical keys —
// as issued by ParallelApply workers — coalesce into one underlying call,
// with the latecomers blocking until the in-flight call completes instead
// of stampeding the controller with duplicate federated-function calls.
type FuncCache struct {
	mu        sync.Mutex
	entries   map[string]*funcCall
	hits      int
	misses    int
	coalesced int
}

// funcCall is one materialised or in-flight invocation; done is closed
// once res/err are set.
type funcCall struct {
	done chan struct{}
	res  *types.Table
	err  error
}

// CacheStats is a point-in-time snapshot of a FuncCache's counters.
type CacheStats struct {
	// Hits counts lookups that found a completed result.
	Hits int
	// Misses counts lookups that had to invoke the function.
	Misses int
	// Coalesced counts lookups that joined an in-flight invocation.
	Coalesced int
}

// Total returns the total number of lookups.
func (s CacheStats) Total() int { return s.Hits + s.Misses + s.Coalesced }

// NewFuncCache returns an empty cache.
func NewFuncCache() *FuncCache {
	return &FuncCache{entries: make(map[string]*funcCall)}
}

// Stats reports cache hits and misses. Safe on a nil cache.
func (fc *FuncCache) Stats() (hits, misses int) {
	if fc == nil {
		return 0, 0
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.hits, fc.misses
}

// Snapshot returns all counters. Safe on a nil cache (all zero).
func (fc *FuncCache) Snapshot() CacheStats {
	if fc == nil {
		return CacheStats{}
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return CacheStats{Hits: fc.hits, Misses: fc.misses, Coalesced: fc.coalesced}
}

// key builds the lookup key. Each argument carries its physical kind as a
// tag so values of different types with identical renderings (integer 1
// vs double 1, say) occupy distinct entries.
func (fc *FuncCache) key(name string, args []types.Value) string {
	var b strings.Builder
	b.WriteString(strings.ToLower(name))
	for _, a := range args {
		b.WriteByte('\x00')
		b.WriteByte('0' + byte(a.Kind()))
		b.WriteString(a.String())
	}
	return b.String()
}

// CacheOutcome classifies one FuncCache lookup.
type CacheOutcome int

// Lookup outcomes.
const (
	// CacheBypass means no cache was consulted.
	CacheBypass CacheOutcome = iota
	// CacheHit found a completed result.
	CacheHit
	// CacheMiss had to invoke the function.
	CacheMiss
	// CacheCoalesced joined an invocation already in flight.
	CacheCoalesced
)

// Invoke returns the cached result for (name, args), joining an in-flight
// call when one exists, and otherwise runs call and publishes its result.
// Errors are cached too: within one statement a failed invocation fails
// the statement, so retrying duplicates would only repeat the failure.
func (fc *FuncCache) Invoke(name string, args []types.Value, call func() (*types.Table, error)) (*types.Table, error) {
	res, _, err := fc.InvokeOutcome(name, args, call)
	return res, err
}

// InvokeOutcome is Invoke plus the classification of this lookup, letting
// an instrumented FuncScan keep per-operator cache counters.
func (fc *FuncCache) InvokeOutcome(name string, args []types.Value, call func() (*types.Table, error)) (*types.Table, CacheOutcome, error) {
	key := fc.key(name, args)
	fc.mu.Lock()
	if c, ok := fc.entries[key]; ok {
		outcome := CacheHit
		select {
		case <-c.done:
			fc.hits++
		default:
			fc.coalesced++
			outcome = CacheCoalesced
		}
		fc.mu.Unlock()
		<-c.done
		return c.res, outcome, c.err
	}
	c := &funcCall{done: make(chan struct{})}
	fc.entries[key] = c
	fc.misses++
	fc.mu.Unlock()
	c.res, c.err = call()
	close(c.done)
	return c.res, CacheMiss, c.err
}

// Operator is a Volcano-style iterator. Open receives the current outer
// binding row (used by lateral operands such as table-function arguments);
// Next returns io.EOF when exhausted.
type Operator interface {
	Schema() types.Schema
	Open(ctx *Ctx, bind types.Row) error
	Next() (types.Row, error)
	Close() error
	Describe() string
	Children() []Operator
	// Clone returns a fresh, closed instance of the same subplan sharing
	// the immutable plan-time fields (schemas, expressions, catalog
	// references) but none of the iteration state, so the copy can run
	// concurrently with the original. ParallelApply clones its right side
	// once per worker.
	Clone() Operator
}

// Run drains an operator into a materialised table. The root is closed on
// every path, including an Open that fails after acquiring resources
// (e.g. an Apply whose left side opened before the failure).
func Run(op Operator, ctx *Ctx) (*types.Table, error) {
	if err := op.Open(ctx, nil); err != nil {
		op.Close()
		return nil, err
	}
	defer op.Close()
	out := types.NewTable(op.Schema().Clone())
	for {
		row, err := op.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
}

// ExplainString renders an operator tree as an indented plan.
func ExplainString(op Operator) string {
	var b strings.Builder
	var walk func(o Operator, depth int)
	walk = func(o Operator, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(o.Describe())
		b.WriteByte('\n')
		for _, c := range o.Children() {
			walk(c, depth+1)
		}
	}
	walk(op, 0)
	return b.String()
}

// --------------------------------------------------------------- Values

// Values emits a fixed list of rows; with one empty row it is the source
// for SELECT without FROM.
type Values struct {
	Sch  types.Schema
	Rows []types.Row
	pos  int
}

// Schema implements Operator.
func (v *Values) Schema() types.Schema { return v.Sch }

// Open implements Operator.
func (v *Values) Open(*Ctx, types.Row) error { v.pos = 0; return nil }

// Next implements Operator.
func (v *Values) Next() (types.Row, error) {
	if v.pos >= len(v.Rows) {
		return nil, io.EOF
	}
	r := v.Rows[v.pos]
	v.pos++
	return r, nil
}

// Close implements Operator.
func (v *Values) Close() error { return nil }

// Describe implements Operator.
func (v *Values) Describe() string { return fmt.Sprintf("Values (%d rows)", len(v.Rows)) }

// Children implements Operator.
func (v *Values) Children() []Operator { return nil }

// Clone implements Operator.
func (v *Values) Clone() Operator { return &Values{Sch: v.Sch, Rows: v.Rows} }

// ------------------------------------------------------------ TableScan

// TableScan reads a snapshot of a base table.
type TableScan struct {
	Table *storage.Table
	Sch   types.Schema
	rows  []types.Row
	pos   int
}

// Schema implements Operator.
func (t *TableScan) Schema() types.Schema { return t.Sch }

// Open implements Operator.
func (t *TableScan) Open(*Ctx, types.Row) error {
	t.rows = t.Table.Scan()
	t.pos = 0
	return nil
}

// Next implements Operator.
func (t *TableScan) Next() (types.Row, error) {
	if t.pos >= len(t.rows) {
		return nil, io.EOF
	}
	r := t.rows[t.pos]
	t.pos++
	return r, nil
}

// Close implements Operator.
func (t *TableScan) Close() error { t.rows = nil; return nil }

// Describe implements Operator.
func (t *TableScan) Describe() string { return "TableScan " + t.Table.Name() }

// Children implements Operator.
func (t *TableScan) Children() []Operator { return nil }

// Clone implements Operator.
func (t *TableScan) Clone() Operator { return &TableScan{Table: t.Table, Sch: t.Sch} }

// ---------------------------------------------------------- VirtualScan

// VirtualScan materializes a catalog virtual table through its provider —
// the read path of the fed_stat_* introspection relations. The provider
// runs at Open, so the scan sees one consistent snapshot per execution.
type VirtualScan struct {
	Name     string
	Sch      types.Schema
	Provider func() (*types.Table, error)
	rows     []types.Row
	pos      int
}

// Schema implements Operator.
func (v *VirtualScan) Schema() types.Schema { return v.Sch }

// Open implements Operator.
func (v *VirtualScan) Open(*Ctx, types.Row) error {
	tab, err := v.Provider()
	if err != nil {
		return fmt.Errorf("virtual table %s: %w", v.Name, err)
	}
	v.rows = tab.Rows
	v.pos = 0
	return nil
}

// Next implements Operator.
func (v *VirtualScan) Next() (types.Row, error) {
	if v.pos >= len(v.rows) {
		return nil, io.EOF
	}
	r := v.rows[v.pos]
	v.pos++
	return r, nil
}

// Close implements Operator.
func (v *VirtualScan) Close() error { v.rows = nil; return nil }

// Describe implements Operator.
func (v *VirtualScan) Describe() string { return "VirtualScan " + v.Name }

// Children implements Operator.
func (v *VirtualScan) Children() []Operator { return nil }

// Clone implements Operator.
func (v *VirtualScan) Clone() Operator {
	return &VirtualScan{Name: v.Name, Sch: v.Sch, Provider: v.Provider}
}

// ----------------------------------------------------------- RemoteScan

// RemoteScan pushes a subquery down to a foreign server through its
// wrapper and streams the materialised result: the FDBS's federated
// query decomposition.
type RemoteScan struct {
	Server catalog.ForeignServer
	Query  *sqlparser.Select
	Sch    types.Schema
	res    *types.Table
	pos    int
}

// Schema implements Operator.
func (r *RemoteScan) Schema() types.Schema { return r.Sch }

// Open implements Operator.
func (r *RemoteScan) Open(ctx *Ctx, _ types.Row) error {
	if err := ctx.check(); err != nil {
		return err
	}
	res, err := catalog.QueryServer(ctx.Context, r.Server, r.Query, ctx.Task)
	if err != nil {
		return fmt.Errorf("exec: remote scan on %s: %w", r.Server.Name(), err)
	}
	if len(res.Schema) != len(r.Sch) {
		return fmt.Errorf("exec: remote scan on %s returned %d columns, planned %d",
			r.Server.Name(), len(res.Schema), len(r.Sch))
	}
	r.res = res
	r.pos = 0
	return nil
}

// Next implements Operator.
func (r *RemoteScan) Next() (types.Row, error) {
	if r.pos >= len(r.res.Rows) {
		return nil, io.EOF
	}
	row := r.res.Rows[r.pos]
	r.pos++
	return row, nil
}

// Close implements Operator.
func (r *RemoteScan) Close() error { r.res = nil; return nil }

// Describe implements Operator.
func (r *RemoteScan) Describe() string {
	return fmt.Sprintf("RemoteScan server=%s pushdown=[%s]", r.Server.Name(), r.Query.String())
}

// Children implements Operator.
func (r *RemoteScan) Children() []Operator { return nil }

// Clone implements Operator.
func (r *RemoteScan) Clone() Operator {
	return &RemoteScan{Server: r.Server, Query: r.Query, Sch: r.Sch}
}

// ------------------------------------------------------------- FuncScan

// FuncScan invokes a table function. Its argument expressions are
// evaluated against the binding row supplied by the enclosing Apply,
// which is how the dependency order among UDTF calls materialises: an
// argument referencing an earlier correlation forces this scan to run
// once per row of that correlation.
type FuncScan struct {
	Fn   catalog.TableFunc
	Args []Expr
	Sch  types.Schema
	// Stats, when set by Instrument, receives per-operator cache
	// outcomes; clones share it.
	Stats *OpStats
	res   *types.Table
	pos   int
}

// Schema implements Operator.
func (f *FuncScan) Schema() types.Schema { return f.Sch }

// Open implements Operator.
func (f *FuncScan) Open(ctx *Ctx, bind types.Row) error {
	args := make([]types.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(bind)
		if err != nil {
			return fmt.Errorf("exec: argument %d of %s: %w", i+1, f.Fn.Name(), err)
		}
		args[i] = v
	}
	if err := ctx.check(); err != nil {
		return err
	}
	sp := obs.StartSpan(ctx.Task, "exec.func", obs.Attr{Key: "fn", Value: f.Fn.Name()})
	defer sp.End(ctx.Task)
	invoke := func() (*types.Table, error) {
		return catalog.InvokeFunc(ctx.Context, f.Fn, ctx.Runner, ctx.Task, args)
	}
	var res *types.Table
	var err error
	if ctx.FuncCache != nil {
		var outcome CacheOutcome
		res, outcome, err = ctx.FuncCache.InvokeOutcome(f.Fn.Name(), args, invoke)
		if f.Stats != nil {
			switch outcome {
			case CacheHit:
				f.Stats.CacheHits.Add(1)
			case CacheMiss:
				f.Stats.CacheMisses.Add(1)
			case CacheCoalesced:
				f.Stats.CacheCoalesced.Add(1)
			}
		}
	} else {
		res, err = invoke()
	}
	if err != nil {
		return err
	}
	f.res = res
	f.pos = 0
	return nil
}

// Next implements Operator.
func (f *FuncScan) Next() (types.Row, error) {
	if f.res == nil || f.pos >= len(f.res.Rows) {
		return nil, io.EOF
	}
	r := f.res.Rows[f.pos]
	f.pos++
	return r, nil
}

// Close implements Operator.
func (f *FuncScan) Close() error { f.res = nil; return nil }

// Describe implements Operator.
func (f *FuncScan) Describe() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("FuncScan %s(%s)", f.Fn.Name(), strings.Join(args, ", "))
}

// Children implements Operator.
func (f *FuncScan) Children() []Operator { return nil }

// Clone implements Operator.
func (f *FuncScan) Clone() Operator {
	return &FuncScan{Fn: f.Fn, Args: f.Args, Sch: f.Sch, Stats: f.Stats}
}

// ---------------------------------------------------------------- Apply

// Apply is the lateral cross product: for every left row it re-opens the
// right side with the left row appended to the binding, emitting
// leftRow ++ rightRow. With an independent right side it degenerates to a
// nested-loop cross join; with lateral references it implements the
// paper's "execution order defined by input parameters".
type Apply struct {
	Left, Right Operator
	Sch         types.Schema
	// Independent marks a right side without lateral references: the
	// operator then composes two materialised result sets and charges the
	// composition cost.
	Independent bool
	// Batch, when enabled and the right side is a bare FuncScan,
	// accumulates outer rows into chunks flushed as one set-oriented
	// invocation each (see batch.go).
	Batch batcher.Policy

	ctx       *Ctx
	bind      types.Row
	leftRow   types.Row
	rightOpen bool
	batch     *batchRun
}

// Schema implements Operator.
func (a *Apply) Schema() types.Schema { return a.Sch }

// Open implements Operator.
func (a *Apply) Open(ctx *Ctx, bind types.Row) error {
	a.ctx = ctx
	a.bind = bind
	a.leftRow = nil
	a.rightOpen = false
	a.batch = newBatchRun(a.Batch, a.Right)
	if a.Independent {
		ctx.Task.Step(simlat.StepJoinComposition, ctx.CompositionCost)
	}
	return a.Left.Open(ctx, bind)
}

// Next implements Operator.
func (a *Apply) Next() (types.Row, error) {
	if a.batch != nil {
		return a.nextBatched()
	}
	for {
		if a.leftRow == nil {
			lr, err := a.Left.Next()
			if err != nil {
				return nil, err
			}
			if err := a.ctx.check(); err != nil {
				return nil, err
			}
			a.leftRow = lr
			childBind := make(types.Row, 0, len(a.bind)+len(lr))
			childBind = append(childBind, a.bind...)
			childBind = append(childBind, lr...)
			if err := a.Right.Open(a.ctx, childBind); err != nil {
				return nil, err
			}
			a.rightOpen = true
		}
		rr, err := a.Right.Next()
		if err == io.EOF {
			a.Right.Close()
			a.rightOpen = false
			a.leftRow = nil
			continue
		}
		if err != nil {
			return nil, err
		}
		out := make(types.Row, 0, len(a.leftRow)+len(rr))
		out = append(out, a.leftRow...)
		out = append(out, rr...)
		return out, nil
	}
}

// Close implements Operator.
func (a *Apply) Close() error {
	if a.rightOpen {
		a.Right.Close()
		a.rightOpen = false
	}
	return a.Left.Close()
}

// Describe implements Operator.
func (a *Apply) Describe() string {
	if a.Batch.Enabled() {
		return fmt.Sprintf("Apply (lateral, batch=%s)", a.Batch)
	}
	return "Apply (lateral)"
}

// Children implements Operator.
func (a *Apply) Children() []Operator { return []Operator{a.Left, a.Right} }

// Clone implements Operator.
func (a *Apply) Clone() Operator {
	return &Apply{Left: a.Left.Clone(), Right: a.Right.Clone(), Sch: a.Sch, Independent: a.Independent, Batch: a.Batch}
}

// ------------------------------------------------------------ LeftApply

// LeftApply implements LEFT OUTER JOIN with lateral semantics: rows of
// the right side are matched with On; unmatched left rows are padded with
// NULLs.
type LeftApply struct {
	Left, Right Operator
	On          Expr // evaluated over leftRow ++ rightRow; nil matches all
	Sch         types.Schema
	// Batch mirrors Apply.Batch: chunked set-oriented right-side calls.
	Batch batcher.Policy

	ctx       *Ctx
	bind      types.Row
	leftRow   types.Row
	rightOpen bool
	matched   bool
	batch     *batchRun
}

// Schema implements Operator.
func (a *LeftApply) Schema() types.Schema { return a.Sch }

// Open implements Operator.
func (a *LeftApply) Open(ctx *Ctx, bind types.Row) error {
	a.ctx = ctx
	a.bind = bind
	a.leftRow = nil
	a.rightOpen = false
	a.batch = newBatchRun(a.Batch, a.Right)
	return a.Left.Open(ctx, bind)
}

// Next implements Operator.
func (a *LeftApply) Next() (types.Row, error) {
	if a.batch != nil {
		return a.nextBatched()
	}
	for {
		if a.leftRow == nil {
			lr, err := a.Left.Next()
			if err != nil {
				return nil, err
			}
			if err := a.ctx.check(); err != nil {
				return nil, err
			}
			a.leftRow = lr
			a.matched = false
			childBind := make(types.Row, 0, len(a.bind)+len(lr))
			childBind = append(childBind, a.bind...)
			childBind = append(childBind, lr...)
			if err := a.Right.Open(a.ctx, childBind); err != nil {
				a.Right.Close()
				if degrade(a.ctx, true, err) {
					// Absorb the shed branch: emit the NULL-padded outer
					// row, as if the right side matched nothing.
					a.leftRow = nil
					out := make(types.Row, 0, len(lr)+len(a.Right.Schema()))
					out = append(out, lr...)
					for range a.Right.Schema() {
						out = append(out, types.Null)
					}
					return out, nil
				}
				return nil, err
			}
			a.rightOpen = true
		}
		rr, err := a.Right.Next()
		if err == io.EOF {
			a.Right.Close()
			a.rightOpen = false
			lr := a.leftRow
			a.leftRow = nil
			if !a.matched {
				out := make(types.Row, 0, len(lr)+len(a.Right.Schema()))
				out = append(out, lr...)
				for range a.Right.Schema() {
					out = append(out, types.Null)
				}
				return out, nil
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		out := make(types.Row, 0, len(a.leftRow)+len(rr))
		out = append(out, a.leftRow...)
		out = append(out, rr...)
		if a.On != nil {
			v, err := a.On.Eval(out)
			if err != nil {
				return nil, err
			}
			ok, err := Truthy(v)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		a.matched = true
		return out, nil
	}
}

// Close implements Operator.
func (a *LeftApply) Close() error {
	if a.rightOpen {
		a.Right.Close()
		a.rightOpen = false
	}
	return a.Left.Close()
}

// Describe implements Operator.
func (a *LeftApply) Describe() string {
	s := "LeftApply"
	if a.Batch.Enabled() {
		s += fmt.Sprintf(" (batch=%s)", a.Batch)
	}
	if a.On != nil {
		s += " on " + a.On.String()
	}
	return s
}

// Children implements Operator.
func (a *LeftApply) Children() []Operator { return []Operator{a.Left, a.Right} }

// Clone implements Operator.
func (a *LeftApply) Clone() Operator {
	return &LeftApply{Left: a.Left.Clone(), Right: a.Right.Clone(), On: a.On, Sch: a.Sch, Batch: a.Batch}
}

// -------------------------------------------------------------- HashJoin

// HashJoin is the optimizer's replacement for Apply+Filter when the right
// side is independent of the left and the predicate contains equality
// conjuncts: it builds a hash table over the right input once.
type HashJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []Expr // equal-length key expressions
	Residual            Expr   // extra predicate over leftRow ++ rightRow, may be nil
	Sch                 types.Schema

	ctx     *Ctx
	table   map[uint64][]types.Row
	leftRow types.Row
	bucket  []types.Row
	bpos    int
}

// Schema implements Operator.
func (h *HashJoin) Schema() types.Schema { return h.Sch }

// Open implements Operator.
func (h *HashJoin) Open(ctx *Ctx, bind types.Row) error {
	h.ctx = ctx
	h.leftRow = nil
	h.bucket = nil
	h.table = make(map[uint64][]types.Row)
	// A hash join always composes independent result sets.
	ctx.Task.Step(simlat.StepJoinComposition, ctx.CompositionCost)
	if err := h.Right.Open(ctx, bind); err != nil {
		return err
	}
	for {
		rr, err := h.Right.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			h.Right.Close()
			return err
		}
		key, null, err := h.keyHash(h.RightKeys, rr)
		if err != nil {
			h.Right.Close()
			return err
		}
		if null {
			continue // NULL keys never join
		}
		h.table[key] = append(h.table[key], rr)
	}
	h.Right.Close()
	return h.Left.Open(ctx, bind)
}

func (h *HashJoin) keyHash(keys []Expr, row types.Row) (uint64, bool, error) {
	var hash uint64 = 14695981039346656037
	for _, k := range keys {
		v, err := k.Eval(row)
		if err != nil {
			return 0, false, err
		}
		if v.IsNull() {
			return 0, true, nil
		}
		hash = hash*1099511628211 ^ v.Hash()
	}
	return hash, false, nil
}

// Next implements Operator.
func (h *HashJoin) Next() (types.Row, error) {
	for {
		if h.leftRow == nil {
			lr, err := h.Left.Next()
			if err != nil {
				return nil, err
			}
			key, null, err := h.keyHash(h.LeftKeys, lr)
			if err != nil {
				return nil, err
			}
			if null {
				continue
			}
			h.leftRow = lr
			h.bucket = h.table[key]
			h.bpos = 0
		}
		if h.bpos >= len(h.bucket) {
			h.leftRow = nil
			continue
		}
		rr := h.bucket[h.bpos]
		h.bpos++
		// Hash collisions and residuals are resolved on the combined row.
		out := make(types.Row, 0, len(h.leftRow)+len(rr))
		out = append(out, h.leftRow...)
		out = append(out, rr...)
		match := true
		for i := range h.LeftKeys {
			lv, err := h.LeftKeys[i].Eval(h.leftRow)
			if err != nil {
				return nil, err
			}
			rv, err := h.RightKeys[i].Eval(rr)
			if err != nil {
				return nil, err
			}
			c, err := types.Compare(lv, rv)
			if err == types.ErrNullCompare {
				match = false
				break
			}
			if err != nil {
				return nil, err
			}
			if c != 0 {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if h.Residual != nil {
			v, err := h.Residual.Eval(out)
			if err != nil {
				return nil, err
			}
			ok, err := Truthy(v)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		return out, nil
	}
}

// Close implements Operator.
func (h *HashJoin) Close() error {
	h.table = nil
	h.bucket = nil
	return h.Left.Close()
}

// Describe implements Operator.
func (h *HashJoin) Describe() string {
	keys := make([]string, len(h.LeftKeys))
	for i := range h.LeftKeys {
		keys[i] = h.LeftKeys[i].String() + "=" + h.RightKeys[i].String()
	}
	s := "HashJoin on " + strings.Join(keys, " AND ")
	if h.Residual != nil {
		s += " residual " + h.Residual.String()
	}
	return s
}

// Children implements Operator.
func (h *HashJoin) Children() []Operator { return []Operator{h.Left, h.Right} }

// Clone implements Operator.
func (h *HashJoin) Clone() Operator {
	return &HashJoin{
		Left: h.Left.Clone(), Right: h.Right.Clone(),
		LeftKeys: h.LeftKeys, RightKeys: h.RightKeys, Residual: h.Residual, Sch: h.Sch,
	}
}

// --------------------------------------------------------------- Filter

// Filter keeps rows whose predicate is true (NULL filters out, per SQL).
type Filter struct {
	Child Operator
	Pred  Expr
}

// Schema implements Operator.
func (f *Filter) Schema() types.Schema { return f.Child.Schema() }

// Open implements Operator.
func (f *Filter) Open(ctx *Ctx, bind types.Row) error { return f.Child.Open(ctx, bind) }

// Next implements Operator.
func (f *Filter) Next() (types.Row, error) {
	for {
		r, err := f.Child.Next()
		if err != nil {
			return nil, err
		}
		v, err := f.Pred.Eval(r)
		if err != nil {
			return nil, err
		}
		ok, err := Truthy(v)
		if err != nil {
			return nil, err
		}
		if ok {
			return r, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Child.Close() }

// Describe implements Operator.
func (f *Filter) Describe() string { return "Filter " + f.Pred.String() }

// Children implements Operator.
func (f *Filter) Children() []Operator { return []Operator{f.Child} }

// Clone implements Operator.
func (f *Filter) Clone() Operator { return &Filter{Child: f.Child.Clone(), Pred: f.Pred} }

// -------------------------------------------------------------- Project

// Project computes the output expressions.
type Project struct {
	Child Operator
	Exprs []Expr
	Sch   types.Schema
}

// Schema implements Operator.
func (p *Project) Schema() types.Schema { return p.Sch }

// Open implements Operator.
func (p *Project) Open(ctx *Ctx, bind types.Row) error { return p.Child.Open(ctx, bind) }

// Next implements Operator.
func (p *Project) Next() (types.Row, error) {
	r, err := p.Child.Next()
	if err != nil {
		return nil, err
	}
	out := make(types.Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Child.Close() }

// Describe implements Operator.
func (p *Project) Describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = p.Sch[i].Name + "=" + e.String()
	}
	return "Project " + strings.Join(parts, ", ")
}

// Children implements Operator.
func (p *Project) Children() []Operator { return []Operator{p.Child} }

// Clone implements Operator.
func (p *Project) Clone() Operator {
	return &Project{Child: p.Child.Clone(), Exprs: p.Exprs, Sch: p.Sch}
}

// ----------------------------------------------------------------- Sort

// SortKey is one ORDER BY key over the child's output row.
type SortKey struct {
	Expr Expr
	Desc bool
}

// Sort materialises and orders its input. NULLs sort first ascending,
// last descending.
type Sort struct {
	Child Operator
	Keys  []SortKey
	rows  []types.Row
	pos   int
}

// Schema implements Operator.
func (s *Sort) Schema() types.Schema { return s.Child.Schema() }

// Open implements Operator.
func (s *Sort) Open(ctx *Ctx, bind types.Row) error {
	if err := s.Child.Open(ctx, bind); err != nil {
		return err
	}
	defer s.Child.Close()
	s.rows = nil
	s.pos = 0
	type keyed struct {
		row  types.Row
		keys []types.Value
	}
	var data []keyed
	for {
		r, err := s.Child.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		ks := make([]types.Value, len(s.Keys))
		for i, k := range s.Keys {
			v, err := k.Expr.Eval(r)
			if err != nil {
				return err
			}
			ks[i] = v
		}
		data = append(data, keyed{row: r, keys: ks})
	}
	var sortErr error
	sort.SliceStable(data, func(i, j int) bool {
		for k, key := range s.Keys {
			a, b := data[i].keys[k], data[j].keys[k]
			an, bn := a.IsNull(), b.IsNull()
			if an || bn {
				if an && bn {
					continue
				}
				// NULLs first ascending, last descending.
				return an != key.Desc
			}
			c, err := types.Compare(a, b)
			if err != nil {
				if sortErr == nil {
					sortErr = err
				}
				return false
			}
			if c == 0 {
				continue
			}
			if key.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	s.rows = make([]types.Row, len(data))
	for i, d := range data {
		s.rows[i] = d.row
	}
	return nil
}

// Next implements Operator.
func (s *Sort) Next() (types.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, io.EOF
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Operator.
func (s *Sort) Close() error { s.rows = nil; return nil }

// Describe implements Operator.
func (s *Sort) Describe() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort " + strings.Join(parts, ", ")
}

// Children implements Operator.
func (s *Sort) Children() []Operator { return []Operator{s.Child} }

// Clone implements Operator.
func (s *Sort) Clone() Operator { return &Sort{Child: s.Child.Clone(), Keys: s.Keys} }

// ------------------------------------------------------------- Distinct

// Distinct removes duplicate rows (hash-based with equality re-check).
type Distinct struct {
	Child Operator
	seen  map[uint64][]types.Row
}

// Schema implements Operator.
func (d *Distinct) Schema() types.Schema { return d.Child.Schema() }

// Open implements Operator.
func (d *Distinct) Open(ctx *Ctx, bind types.Row) error {
	d.seen = make(map[uint64][]types.Row)
	return d.Child.Open(ctx, bind)
}

// Next implements Operator.
func (d *Distinct) Next() (types.Row, error) {
	for {
		r, err := d.Child.Next()
		if err != nil {
			return nil, err
		}
		var h uint64 = 14695981039346656037
		for _, v := range r {
			h = h*1099511628211 ^ v.Hash()
		}
		dup := false
		for _, prev := range d.seen[h] {
			if prev.Equal(r) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		d.seen[h] = append(d.seen[h], r)
		return r, nil
	}
}

// Close implements Operator.
func (d *Distinct) Close() error { d.seen = nil; return d.Child.Close() }

// Describe implements Operator.
func (d *Distinct) Describe() string { return "Distinct" }

// Children implements Operator.
func (d *Distinct) Children() []Operator { return []Operator{d.Child} }

// Clone implements Operator.
func (d *Distinct) Clone() Operator { return &Distinct{Child: d.Child.Clone()} }

// --------------------------------------------------------------- Concat

// Concat streams its children one after the other: the UNION ALL
// operator (UNION wraps it in Distinct).
type Concat struct {
	Inputs []Operator
	ctx    *Ctx
	bind   types.Row
	pos    int
	open   bool
}

// Schema implements Operator; column names come from the first input.
func (c *Concat) Schema() types.Schema { return c.Inputs[0].Schema() }

// Open implements Operator.
func (c *Concat) Open(ctx *Ctx, bind types.Row) error {
	c.ctx = ctx
	c.bind = bind
	c.pos = 0
	c.open = false
	return nil
}

// Next implements Operator.
func (c *Concat) Next() (types.Row, error) {
	for {
		if c.pos >= len(c.Inputs) {
			return nil, io.EOF
		}
		if !c.open {
			if err := c.Inputs[c.pos].Open(c.ctx, c.bind); err != nil {
				return nil, err
			}
			c.open = true
		}
		row, err := c.Inputs[c.pos].Next()
		if err == io.EOF {
			c.Inputs[c.pos].Close()
			c.open = false
			c.pos++
			continue
		}
		if err != nil {
			return nil, err
		}
		return row, nil
	}
}

// Close implements Operator.
func (c *Concat) Close() error {
	if c.open && c.pos < len(c.Inputs) {
		c.Inputs[c.pos].Close()
		c.open = false
	}
	return nil
}

// Describe implements Operator.
func (c *Concat) Describe() string { return fmt.Sprintf("Concat (%d inputs)", len(c.Inputs)) }

// Children implements Operator.
func (c *Concat) Children() []Operator { return c.Inputs }

// Clone implements Operator.
func (c *Concat) Clone() Operator {
	inputs := make([]Operator, len(c.Inputs))
	for i, in := range c.Inputs {
		inputs[i] = in.Clone()
	}
	return &Concat{Inputs: inputs}
}

// ---------------------------------------------------------------- Limit

// Limit implements LIMIT/OFFSET. A negative limit means unlimited.
type Limit struct {
	Child   Operator
	Count   int64
	Skip    int64
	emitted int64
	skipped int64
}

// Schema implements Operator.
func (l *Limit) Schema() types.Schema { return l.Child.Schema() }

// Open implements Operator.
func (l *Limit) Open(ctx *Ctx, bind types.Row) error {
	l.emitted, l.skipped = 0, 0
	return l.Child.Open(ctx, bind)
}

// Next implements Operator.
func (l *Limit) Next() (types.Row, error) {
	for {
		if l.Count >= 0 && l.emitted >= l.Count {
			return nil, io.EOF
		}
		r, err := l.Child.Next()
		if err != nil {
			return nil, err
		}
		if l.skipped < l.Skip {
			l.skipped++
			continue
		}
		l.emitted++
		return r, nil
	}
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Child.Close() }

// Describe implements Operator.
func (l *Limit) Describe() string { return fmt.Sprintf("Limit %d offset %d", l.Count, l.Skip) }

// Children implements Operator.
func (l *Limit) Children() []Operator { return []Operator{l.Child} }

// Clone implements Operator.
func (l *Limit) Clone() Operator {
	return &Limit{Child: l.Child.Clone(), Count: l.Count, Skip: l.Skip}
}
