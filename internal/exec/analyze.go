package exec

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fedwf/internal/obs/stats"
	"fedwf/internal/simlat"
	"fedwf/internal/types"
)

// OpStats accumulates runtime statistics for one plan node. All clones of
// the node — ParallelApply makes one clone of its right side per worker —
// share the same OpStats, so the counters aggregate across workers; they
// are atomic for that reason.
type OpStats struct {
	// Opens counts Open calls (the loop count for a lateral right side).
	Opens atomic.Int64
	// Rows counts rows returned by Next across all opens and clones.
	Rows atomic.Int64
	// Busy is the cumulative task time (virtual in virtual mode, wall
	// otherwise) observed inside Open and Next, children included.
	Busy atomic.Int64

	// CacheHits/CacheMisses/CacheCoalesced are per-operator function-cache
	// outcomes; only FuncScan nodes record them.
	CacheHits      atomic.Int64
	CacheMisses    atomic.Int64
	CacheCoalesced atomic.Int64

	// workers holds per-worker utilization (simlat work charged on each
	// branch) recorded by ParallelApply after joining its pool.
	wmu     sync.Mutex
	workers []time.Duration
}

// addWorker accumulates branch-spent time for worker w.
func (st *OpStats) addWorker(w int, d time.Duration) {
	st.wmu.Lock()
	for len(st.workers) <= w {
		st.workers = append(st.workers, 0)
	}
	st.workers[w] += d
	st.wmu.Unlock()
}

// Workers returns per-worker utilization, empty for non-parallel nodes.
func (st *OpStats) Workers() []time.Duration {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	return append([]time.Duration(nil), st.workers...)
}

// Analyzed wraps an operator with row/time accounting for EXPLAIN
// ANALYZE. Clones share the wrapped node's OpStats, so statistics
// aggregate across ParallelApply workers.
type Analyzed struct {
	Child Operator
	Stats *OpStats

	task *simlat.Task
}

// Schema implements Operator.
func (a *Analyzed) Schema() types.Schema { return a.Child.Schema() }

// Open implements Operator.
func (a *Analyzed) Open(ctx *Ctx, bind types.Row) error {
	a.task = ctx.Task
	a.Stats.Opens.Add(1)
	before := a.task.Elapsed()
	err := a.Child.Open(ctx, bind)
	a.Stats.Busy.Add(int64(a.task.Elapsed() - before))
	return err
}

// Next implements Operator.
func (a *Analyzed) Next() (types.Row, error) {
	before := a.task.Elapsed()
	row, err := a.Child.Next()
	a.Stats.Busy.Add(int64(a.task.Elapsed() - before))
	if err == nil {
		a.Stats.Rows.Add(1)
	}
	return row, err
}

// Close implements Operator.
func (a *Analyzed) Close() error { return a.Child.Close() }

// Describe implements Operator.
func (a *Analyzed) Describe() string { return a.Child.Describe() }

// Children implements Operator.
func (a *Analyzed) Children() []Operator { return a.Child.Children() }

// Clone implements Operator: the clone shares Stats so worker-side
// execution aggregates into the same counters.
func (a *Analyzed) Clone() Operator {
	return &Analyzed{Child: a.Child.Clone(), Stats: a.Stats}
}

// Instrument wraps every node of a plan in Analyzed, rewriting child
// links in place, and returns the wrapped root. FuncScan nodes are handed
// their OpStats so they can record per-operator cache outcomes, and
// ParallelApply nodes theirs so they can record per-worker utilization.
func Instrument(op Operator) Operator {
	switch o := op.(type) {
	case *Analyzed:
		return o
	case *Apply:
		o.Left = Instrument(o.Left)
		o.Right = Instrument(o.Right)
	case *LeftApply:
		o.Left = Instrument(o.Left)
		o.Right = Instrument(o.Right)
	case *ParallelApply:
		o.Left = Instrument(o.Left)
		o.Right = Instrument(o.Right)
	case *HashJoin:
		o.Left = Instrument(o.Left)
		o.Right = Instrument(o.Right)
	case *Filter:
		o.Child = Instrument(o.Child)
	case *Project:
		o.Child = Instrument(o.Child)
	case *Sort:
		o.Child = Instrument(o.Child)
	case *Distinct:
		o.Child = Instrument(o.Child)
	case *Limit:
		o.Child = Instrument(o.Child)
	case *Concat:
		for i, in := range o.Inputs {
			o.Inputs[i] = Instrument(in)
		}
	case *Agg:
		o.Child = Instrument(o.Child)
	}
	st := &OpStats{}
	if fs, ok := op.(*FuncScan); ok {
		fs.Stats = st
	}
	if pa, ok := op.(*ParallelApply); ok {
		pa.Stats = st
	}
	return &Analyzed{Child: op, Stats: st}
}

// ExplainAnalyzeString renders an instrumented plan after execution: one
// line per node with its Describe text plus actual rows, loops, and
// cumulative time in paper milliseconds; FuncScan lines add cache
// outcomes, ParallelApply lines per-worker utilization.
func ExplainAnalyzeString(op Operator) string {
	var b strings.Builder
	var walk func(o Operator, depth int)
	walk = func(o Operator, depth int) {
		an, ok := o.(*Analyzed)
		if !ok {
			b.WriteString(strings.Repeat("  ", depth))
			b.WriteString(o.Describe())
			b.WriteByte('\n')
			for _, c := range o.Children() {
				walk(c, depth+1)
			}
			return
		}
		st := an.Stats
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s (actual rows=%d loops=%d time=%s)",
			an.Child.Describe(), st.Rows.Load(), st.Opens.Load(), paperMSString(time.Duration(st.Busy.Load())))
		if h, m, c := st.CacheHits.Load(), st.CacheMisses.Load(), st.CacheCoalesced.Load(); h+m+c > 0 {
			fmt.Fprintf(&b, " cache(hits=%d misses=%d coalesced=%d)", h, m, c)
		}
		if ws := st.Workers(); len(ws) > 0 {
			parts := make([]string, len(ws))
			for i, d := range ws {
				parts[i] = fmt.Sprintf("w%d=%s", i, paperMSString(d))
			}
			fmt.Fprintf(&b, " workers[%s]", strings.Join(parts, " "))
		}
		b.WriteByte('\n')
		for _, c := range an.Child.Children() {
			walk(c, depth+1)
		}
	}
	walk(op, 0)
	return b.String()
}

// paperMSString renders d in paper milliseconds with one decimal.
func paperMSString(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(simlat.PaperMS))
}

// CollectActuals flattens an instrumented plan's measured actuals in
// ExplainString preorder, one entry per plan line, for the plan-shape
// feedback store behind measured-vs-estimated EXPLAIN output.
func CollectActuals(op Operator) []stats.OpActual {
	var out []stats.OpActual
	var walk func(o Operator, depth int)
	walk = func(o Operator, depth int) {
		if an, ok := o.(*Analyzed); ok {
			st := an.Stats
			out = append(out, stats.OpActual{
				Node:  an.Child.Describe(),
				Depth: depth,
				Rows:  st.Rows.Load(),
				Loops: st.Opens.Load(),
				Busy:  time.Duration(st.Busy.Load()),
			})
			for _, c := range an.Child.Children() {
				walk(c, depth+1)
			}
			return
		}
		out = append(out, stats.OpActual{Node: o.Describe(), Depth: depth})
		for _, c := range o.Children() {
			walk(c, depth+1)
		}
	}
	walk(op, 0)
	return out
}

// RunAnalyze instruments the plan, executes it to completion, and returns
// the result table together with the instrumented root for rendering.
func RunAnalyze(op Operator, ctx *Ctx) (*types.Table, Operator, error) {
	root := Instrument(op)
	tab, err := Run(root, ctx)
	return tab, root, err
}

// Drain consumes and discards an operator's rows; used by callers that
// want side effects (statistics) without materialising results.
func Drain(op Operator, ctx *Ctx) (int, error) {
	if err := op.Open(ctx, nil); err != nil {
		op.Close()
		return 0, err
	}
	defer op.Close()
	n := 0
	for {
		_, err := op.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}
