package sqlparser

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fedwf/internal/types"
)

// Generative round-trip property: for randomly generated statement ASTs,
// rendering to SQL and reparsing yields an identical AST. This exercises
// every printer and every parser production against each other.

type astGen struct{ r *rand.Rand }

func (g *astGen) ident() string {
	names := []string{"a", "b", "supplier_no", "CompName", "x1", "Qual", "T2"}
	return names[g.r.Intn(len(names))]
}

func (g *astGen) typ() types.Type {
	all := []types.Type{
		types.Boolean, types.SmallInt, types.Integer, types.BigInt,
		types.Double, types.VarChar, types.VarCharN(1 + g.r.Intn(40)),
	}
	return all[g.r.Intn(len(all))]
}

func (g *astGen) literal() Expr {
	switch g.r.Intn(5) {
	case 0:
		return &Literal{Val: types.NewInt(int64(g.r.Intn(1000)))}
	case 1:
		// Positive floats only: a leading minus would parse as unary minus.
		return &Literal{Val: types.NewFloat(float64(g.r.Intn(100)) + 0.5)}
	case 2:
		s := []string{"", "x", "it's", "two words", "%_"}[g.r.Intn(5)]
		return &Literal{Val: types.NewString(s)}
	case 3:
		return &Literal{Val: types.NewBool(g.r.Intn(2) == 0)}
	default:
		return &Literal{Val: types.Null}
	}
}

// expr generates a random expression tree of bounded depth.
func (g *astGen) expr(depth int) Expr {
	if depth <= 0 {
		if g.r.Intn(2) == 0 {
			return g.literal()
		}
		ref := &ColumnRef{Name: g.ident()}
		if g.r.Intn(3) == 0 {
			ref.Qualifier = g.ident()
		}
		return ref
	}
	switch g.r.Intn(10) {
	case 0:
		ops := []string{"+", "-", "*", "/", "%", "||", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"}
		return &BinaryExpr{Op: ops[g.r.Intn(len(ops))], L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 1:
		op := []string{"NOT", "-"}[g.r.Intn(2)]
		return &UnaryExpr{Op: op, X: g.expr(depth - 1)}
	case 2:
		return &IsNull{X: g.expr(depth - 1), Not: g.r.Intn(2) == 0}
	case 3:
		return &Between{X: g.expr(depth - 1), Lo: g.expr(depth - 1), Hi: g.expr(depth - 1), Not: g.r.Intn(2) == 0}
	case 4:
		n := 1 + g.r.Intn(3)
		list := make([]Expr, n)
		for i := range list {
			list[i] = g.expr(depth - 1)
		}
		return &InList{X: g.expr(depth - 1), List: list, Not: g.r.Intn(2) == 0}
	case 5:
		return &Like{X: g.expr(depth - 1), Pattern: g.expr(depth - 1), Not: g.r.Intn(2) == 0}
	case 6:
		c := &CaseExpr{}
		for i := 0; i <= g.r.Intn(2); i++ {
			c.Whens = append(c.Whens, WhenClause{Cond: g.expr(depth - 1), Result: g.expr(depth - 1)})
		}
		if g.r.Intn(2) == 0 {
			c.Else = g.expr(depth - 1)
		}
		return c
	case 7:
		return &CastExpr{X: g.expr(depth - 1), Type: g.typ()}
	case 8:
		fns := []string{"UPPER", "COALESCE", "MOD", "SUM", "COUNT"}
		call := &FuncCall{Name: fns[g.r.Intn(len(fns))]}
		for i := 0; i <= g.r.Intn(2); i++ {
			call.Args = append(call.Args, g.expr(depth-1))
		}
		if len(call.Args) == 0 {
			call.Args = []Expr{g.literal()}
		}
		return call
	default:
		return g.expr(0)
	}
}

func (g *astGen) fromItem(depth int) FromItem {
	switch g.r.Intn(4) {
	case 0:
		ref := &TableRef{Name: g.ident()}
		if g.r.Intn(2) == 0 {
			ref.Alias = "c" + fmt.Sprint(g.r.Intn(10))
		}
		return ref
	case 1:
		fn := &TableFuncRef{Name: "Fn" + fmt.Sprint(g.r.Intn(5)), Alias: "f" + fmt.Sprint(g.r.Intn(10))}
		for i := 0; i < g.r.Intn(3); i++ {
			fn.Args = append(fn.Args, g.expr(1))
		}
		return fn
	case 2:
		if depth <= 0 {
			return &TableRef{Name: g.ident()}
		}
		return &SubqueryRef{Query: g.selectStmt(depth - 1), Alias: "d" + fmt.Sprint(g.r.Intn(10))}
	default:
		if depth <= 0 {
			return &TableRef{Name: g.ident()}
		}
		jt := []JoinType{InnerJoin, LeftJoin, CrossJoin}[g.r.Intn(3)]
		j := &JoinRef{Type: jt, Left: g.fromItem(0), Right: g.fromItem(0)}
		if jt != CrossJoin {
			j.On = g.expr(1)
		}
		return j
	}
}

func (g *astGen) selectStmt(depth int) *Select {
	sel := &Select{Limit: -1, Distinct: g.r.Intn(4) == 0}
	n := 1 + g.r.Intn(3)
	for i := 0; i < n; i++ {
		switch g.r.Intn(5) {
		case 0:
			sel.Items = append(sel.Items, SelectItem{Star: true})
		case 1:
			sel.Items = append(sel.Items, SelectItem{Star: true, Qualifier: g.ident()})
		default:
			item := SelectItem{Expr: g.expr(2)}
			if g.r.Intn(2) == 0 {
				item.Alias = "al" + fmt.Sprint(g.r.Intn(10))
			}
			sel.Items = append(sel.Items, item)
		}
	}
	for i := 0; i < g.r.Intn(3); i++ {
		sel.From = append(sel.From, g.fromItem(depth))
	}
	if len(sel.From) > 0 && g.r.Intn(2) == 0 {
		sel.Where = g.expr(2)
	}
	if g.r.Intn(4) == 0 {
		sel.GroupBy = append(sel.GroupBy, g.expr(1))
		if g.r.Intn(2) == 0 {
			sel.Having = g.expr(1)
		}
	}
	for i := 0; i < g.r.Intn(3); i++ {
		sel.OrderBy = append(sel.OrderBy, OrderItem{Expr: g.expr(1), Desc: g.r.Intn(2) == 0})
	}
	if g.r.Intn(3) == 0 {
		sel.Limit = int64(g.r.Intn(100))
		if g.r.Intn(2) == 0 {
			sel.Offset = int64(1 + g.r.Intn(50))
		}
	}
	if depth > 0 && g.r.Intn(4) == 0 {
		for i := 0; i <= g.r.Intn(2); i++ {
			branch := g.selectStmt(0)
			branch.Unions = nil
			branch.OrderBy = nil
			branch.Limit = -1
			branch.Offset = 0
			sel.Unions = append(sel.Unions, UnionBranch{All: g.r.Intn(2) == 0, Query: branch})
		}
	}
	return sel
}

func (g *astGen) statement() Statement {
	switch g.r.Intn(8) {
	case 0:
		n := 1 + g.r.Intn(4)
		ct := &CreateTable{Name: g.ident()}
		for i := 0; i < n; i++ {
			ct.Columns = append(ct.Columns, ColumnDef{
				Name: fmt.Sprintf("c%d", i), Type: g.typ(), PrimaryKey: i == 0 && g.r.Intn(3) == 0,
			})
		}
		return ct
	case 1:
		ins := &Insert{Table: g.ident()}
		if g.r.Intn(2) == 0 {
			ins.Columns = []string{"c0", "c1"}
		}
		if g.r.Intn(3) == 0 {
			ins.Query = g.selectStmt(1)
			return ins
		}
		for i := 0; i <= g.r.Intn(2); i++ {
			ins.Rows = append(ins.Rows, []Expr{g.literal(), g.literal()})
		}
		return ins
	case 2:
		up := &Update{Table: g.ident()}
		up.Assignments = append(up.Assignments, Assignment{Column: "c0", Expr: g.expr(1)})
		if g.r.Intn(2) == 0 {
			up.Where = g.expr(1)
		}
		return up
	case 3:
		d := &Delete{Table: g.ident()}
		if g.r.Intn(2) == 0 {
			d.Where = g.expr(1)
		}
		return d
	case 4:
		cf := &CreateFunction{
			Name:     "F" + fmt.Sprint(g.r.Intn(10)),
			Returns:  types.Schema{{Name: "r0", Type: g.typ()}},
			Language: "SQL",
			Body:     g.selectStmt(1),
		}
		for i := 0; i < g.r.Intn(3); i++ {
			cf.Params = append(cf.Params, ParamDef{Name: fmt.Sprintf("p%d", i), Type: g.typ()})
		}
		if g.r.Intn(3) == 0 {
			cf.Language = "EXTERNAL"
			cf.Body = nil
			cf.ExternalName = "pkg.impl'with'quotes"
		}
		return cf
	case 5:
		switch g.r.Intn(3) {
		case 0:
			return &CreateWrapper{Name: g.ident(), Options: g.options()}
		case 1:
			return &CreateServer{Name: g.ident(), Wrapper: g.ident(), Options: g.options()}
		default:
			return &CreateNickname{Name: g.ident(), Server: g.ident(), Remote: g.ident()}
		}
	case 6:
		return &Explain{Stmt: g.selectStmt(1)}
	default:
		return g.selectStmt(2)
	}
}

func (g *astGen) options() map[string]string {
	if g.r.Intn(2) == 0 {
		return nil
	}
	out := map[string]string{}
	for i := 0; i <= g.r.Intn(2); i++ {
		out[fmt.Sprintf("opt%d", i)] = []string{"v", "it's", "two words"}[g.r.Intn(3)]
	}
	return out
}

func TestGenerativeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := &astGen{r: rand.New(rand.NewSource(seed))}
		stmt := g.statement()
		text := stmt.String()
		re, err := Parse(text)
		if err != nil {
			t.Logf("seed %d: %q failed to reparse: %v", seed, text, err)
			return false
		}
		if !reflect.DeepEqual(normalize(stmt), normalize(re)) {
			t.Logf("seed %d: round trip changed AST\n in: %s\nout: %s", seed, text, re.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// normalize canonicalises representation differences that the printer
// erases legitimately: nil vs empty option maps.
func normalize(s Statement) Statement {
	switch st := s.(type) {
	case *CreateWrapper:
		if len(st.Options) == 0 {
			return &CreateWrapper{Name: st.Name}
		}
	case *CreateServer:
		if len(st.Options) == 0 {
			return &CreateServer{Name: st.Name, Wrapper: st.Wrapper}
		}
	}
	return s
}
