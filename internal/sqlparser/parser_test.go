package sqlparser

import (
	"reflect"
	"strings"
	"testing"

	"fedwf/internal/types"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

// roundTrip asserts that rendering a parsed statement and reparsing it
// yields an identical AST.
func roundTrip(t *testing.T, sql string) Statement {
	t.Helper()
	s1 := mustParse(t, sql)
	s2, err := Parse(s1.String())
	if err != nil {
		t.Fatalf("reparse of %q -> %q failed: %v", sql, s1.String(), err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("round trip changed AST:\n in: %q\nout: %q", sql, s1.String())
	}
	return s1
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 'it''s', 1.5e3 FROM t -- comment\n/* block */ WHERE x <> 2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "a", ",", "it's", ",", "1.5e3", "FROM", "t", "WHERE", "x", "<>", "2", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[3] != TokString || kinds[5] != TokNumber || kinds[10] != TokOp {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{
		"SELECT 'unterminated",
		`SELECT "unterminated`,
		"SELECT 1e",
		"SELECT /* unterminated",
		"SELECT a ? b",
	} {
		if _, err := Lex(bad); err == nil {
			t.Errorf("Lex(%q) should fail", bad)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("SELECT\n  x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("position of x = line %d col %d", toks[1].Line, toks[1].Col)
	}
}

func TestParsePaperBuySuppComp(t *testing.T) {
	// The exact statement from Sect. 2 of the paper.
	sql := `SELECT DP.Answer
	 FROM TABLE (GetQuality(SupplierNo)) AS GQ,
	      TABLE (GetReliability(SupplierNo)) AS GR,
	      TABLE (GetGrade(GQ.Qual, GR.Relia)) AS GG,
	      TABLE (GetCompNo(CompName)) AS GCN,
	      TABLE (DecidePurchase(GG.Grade, GCN.No)) AS DP`
	stmt := roundTrip(t, sql)
	sel := stmt.(*Select)
	if len(sel.From) != 5 {
		t.Fatalf("FROM items = %d", len(sel.From))
	}
	tf, ok := sel.From[2].(*TableFuncRef)
	if !ok || tf.Name != "GetGrade" || tf.Alias != "GG" || len(tf.Args) != 2 {
		t.Fatalf("third item = %#v", sel.From[2])
	}
	arg0 := tf.Args[0].(*ColumnRef)
	if arg0.Qualifier != "GQ" || arg0.Name != "Qual" {
		t.Errorf("lateral arg = %v", arg0)
	}
	if sel.From[2].Corr() != "GG" {
		t.Errorf("Corr = %q", sel.From[2].Corr())
	}
}

func TestParsePaperCreateFunction(t *testing.T) {
	// The exact I-UDTF definition from Sect. 2.
	sql := `CREATE FUNCTION BuySuppComp (SupplierNo INT, CompName VARCHAR)
	 RETURNS TABLE (Decision VARCHAR) LANGUAGE SQL RETURN
	 SELECT DP.Answer
	 FROM TABLE (GetQuality(BuySuppComp.SupplierNo)) AS GQ,
	      TABLE (GetReliability(BuySuppComp.SupplierNo)) AS GR,
	      TABLE (GetGrade(GQ.Qual, GR.Relia)) AS GG,
	      TABLE (GetCompNo(BuySuppComp.CompName)) AS GCN,
	      TABLE (DecidePurchase(GG.Grade, GCN.No)) AS DP`
	stmt := roundTrip(t, sql)
	cf := stmt.(*CreateFunction)
	if cf.Name != "BuySuppComp" || cf.Language != "SQL" {
		t.Fatalf("cf = %+v", cf)
	}
	if len(cf.Params) != 2 || cf.Params[0].Type != types.Integer || cf.Params[1].Type != types.VarChar {
		t.Errorf("params = %v", cf.Params)
	}
	if len(cf.Returns) != 1 || cf.Returns[0].Name != "Decision" {
		t.Errorf("returns = %v", cf.Returns)
	}
	// Parameter references parse as qualified column refs.
	arg := cf.Body.From[0].(*TableFuncRef).Args[0].(*ColumnRef)
	if arg.Qualifier != "BuySuppComp" || arg.Name != "SupplierNo" {
		t.Errorf("param ref = %v", arg)
	}
}

func TestParsePaperGetNumberSupp1234(t *testing.T) {
	sql := `CREATE FUNCTION GetNumberSupp1234 (CompNo INT)
	 RETURNS TABLE (Number BIGINT) LANGUAGE SQL RETURN
	 SELECT BIGINT(GN.Number)
	 FROM TABLE (GetNumber(1234, GetNumberSupp1234.CompNo)) AS GN`
	stmt := roundTrip(t, sql)
	cf := stmt.(*CreateFunction)
	call := cf.Body.Items[0].Expr.(*FuncCall)
	if call.Name != "BIGINT" || len(call.Args) != 1 {
		t.Errorf("cast call = %v", call)
	}
	lit := cf.Body.From[0].(*TableFuncRef).Args[0].(*Literal)
	if lit.Val.Int() != 1234 {
		t.Errorf("constant arg = %v", lit.Val)
	}
}

func TestParsePaperIndependentCase(t *testing.T) {
	sql := `CREATE FUNCTION GetSubCompDiscounts (CompNo INT, Discount INT)
	 RETURNS TABLE (SubCompNo INT, SupplierNo INT)
	 LANGUAGE SQL RETURN
	 SELECT GSCD.SubCompNo, GCS4D.SupplierNo
	 FROM TABLE (GetSubCompNo(GetSubCompDiscounts.CompNo)) AS GSCD,
	      TABLE (GetCompSupp4Discount(GetSubCompDiscounts.Discount)) AS GCS4D
	 WHERE GSCD.SubCompNo = GCS4D.CompNo`
	stmt := roundTrip(t, sql)
	cf := stmt.(*CreateFunction)
	be := cf.Body.Where.(*BinaryExpr)
	if be.Op != "=" {
		t.Errorf("join predicate = %v", be)
	}
}

func TestParseSelectFull(t *testing.T) {
	sql := `SELECT DISTINCT s.Name AS n, COUNT(*) AS c
	 FROM suppliers AS s JOIN parts p ON s.No = p.SuppNo
	 WHERE s.Rating >= 3 AND p.Price BETWEEN 1 AND 10 OR p.Name LIKE 'bol%'
	 GROUP BY s.Name HAVING COUNT(*) > 2
	 ORDER BY c DESC, n LIMIT 10 OFFSET 5`
	sel := roundTrip(t, sql).(*Select)
	if !sel.Distinct || sel.Limit != 10 || sel.Offset != 5 {
		t.Errorf("flags: %+v", sel)
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by = %v", sel.OrderBy)
	}
	if _, ok := sel.From[0].(*JoinRef); !ok {
		t.Errorf("from = %T", sel.From[0])
	}
}

func TestParseJoins(t *testing.T) {
	sel := roundTrip(t, "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x CROSS JOIN c").(*Select)
	outer := sel.From[0].(*JoinRef)
	if outer.Type != CrossJoin {
		t.Fatalf("outer join type = %v", outer.Type)
	}
	inner := outer.Left.(*JoinRef)
	if inner.Type != LeftJoin || inner.On == nil {
		t.Errorf("inner = %+v", inner)
	}
	if outer.Corr() != "" {
		t.Errorf("join Corr = %q", outer.Corr())
	}
}

func TestParseUnion(t *testing.T) {
	sel := roundTrip(t, "SELECT a FROM t UNION ALL SELECT b FROM u UNION SELECT c FROM v ORDER BY 1 LIMIT 5").(*Select)
	if len(sel.Unions) != 2 {
		t.Fatalf("unions = %d", len(sel.Unions))
	}
	if !sel.Unions[0].All || sel.Unions[1].All {
		t.Errorf("ALL flags = %v, %v", sel.Unions[0].All, sel.Unions[1].All)
	}
	// ORDER BY and LIMIT belong to the chain, not the last member.
	if sel.Limit != 5 || len(sel.OrderBy) != 1 {
		t.Errorf("chain order/limit: %+v", sel)
	}
	if sel.Unions[1].Query.Limit != -1 || len(sel.Unions[1].Query.OrderBy) != 0 {
		t.Errorf("member inherited order/limit: %+v", sel.Unions[1].Query)
	}
	// Union inside a derived table.
	roundTrip(t, "SELECT * FROM (SELECT a FROM t UNION SELECT b FROM u) AS d")
	if _, err := Parse("SELECT a FROM t UNION"); err == nil {
		t.Error("dangling UNION accepted")
	}
}

func TestParseDerivedTable(t *testing.T) {
	sel := roundTrip(t, "SELECT d.x FROM (SELECT a AS x FROM t) AS d").(*Select)
	sub := sel.From[0].(*SubqueryRef)
	if sub.Alias != "d" || len(sub.Query.Items) != 1 {
		t.Errorf("subquery = %+v", sub)
	}
}

func TestParseExpressions(t *testing.T) {
	for _, sql := range []string{
		"SELECT 1 + 2 * 3 - 4 / 5 % 6",
		"SELECT -x, NOT a, b IS NULL, c IS NOT NULL",
		"SELECT a IN (1, 2, 3), b NOT IN ('x'), c NOT BETWEEN 1 AND 2",
		"SELECT x NOT LIKE 'a_%', y || 'suffix'",
		"SELECT CASE WHEN a > 1 THEN 'big' WHEN a = 1 THEN 'one' ELSE 'small' END",
		"SELECT CAST(x AS BIGINT), CAST('5' AS VARCHAR(2))",
		"SELECT COUNT(*), COUNT(DISTINCT x), SUM(a + b), TRUE, FALSE, NULL",
		"SELECT ((a OR b) AND NOT (c OR d))",
		"SELECT 1.5, .5, 2e10, 'it''s'",
	} {
		roundTrip(t, sql)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT 1 + 2 * 3").(*Select)
	add := sel.Items[0].Expr.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top op = %s", add.Op)
	}
	mul := add.R.(*BinaryExpr)
	if mul.Op != "*" {
		t.Errorf("right op = %s", mul.Op)
	}
	sel = mustParse(t, "SELECT a OR b AND c").(*Select)
	or := sel.Items[0].Expr.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top boolean op = %s", or.Op)
	}
	if and := or.R.(*BinaryExpr); and.Op != "AND" {
		t.Errorf("right boolean op = %s", and.Op)
	}
	// != normalises to <>.
	sel = mustParse(t, "SELECT a != b").(*Select)
	if ne := sel.Items[0].Expr.(*BinaryExpr); ne.Op != "<>" {
		t.Errorf("!= normalisation = %s", ne.Op)
	}
}

func TestParseDDL(t *testing.T) {
	ct := roundTrip(t, "CREATE TABLE suppliers (No INT PRIMARY KEY, Name VARCHAR(30), Rating DOUBLE)").(*CreateTable)
	if len(ct.Columns) != 3 || !ct.Columns[0].PrimaryKey || ct.Columns[1].Type != types.VarCharN(30) {
		t.Errorf("create table = %+v", ct)
	}
	roundTrip(t, "DROP TABLE suppliers")
	ci := roundTrip(t, "CREATE INDEX idx ON suppliers (Name)").(*CreateIndex)
	if ci.Table != "suppliers" || ci.Column != "Name" {
		t.Errorf("create index = %+v", ci)
	}
	roundTrip(t, "DROP FUNCTION f")
	cf := roundTrip(t, "CREATE FUNCTION f (x INT) RETURNS TABLE (y INT) LANGUAGE EXTERNAL NAME 'appsys.GetQuality'").(*CreateFunction)
	if cf.Language != "EXTERNAL" || cf.ExternalName != "appsys.GetQuality" {
		t.Errorf("external function = %+v", cf)
	}
}

func TestParseSQLMED(t *testing.T) {
	cw := roundTrip(t, "CREATE WRAPPER wfwrapper OPTIONS (endpoint 'inproc', mode 'sync')").(*CreateWrapper)
	if cw.Options["endpoint"] != "inproc" {
		t.Errorf("wrapper opts = %v", cw.Options)
	}
	cs := roundTrip(t, "CREATE SERVER wfserver WRAPPER wfwrapper OPTIONS (host 'localhost')").(*CreateServer)
	if cs.Wrapper != "wfwrapper" {
		t.Errorf("server = %+v", cs)
	}
	cn := roundTrip(t, "CREATE NICKNAME remote_parts FOR partsrv.parts").(*CreateNickname)
	if cn.Server != "partsrv" || cn.Remote != "parts" {
		t.Errorf("nickname = %+v", cn)
	}
}

func TestParseDML(t *testing.T) {
	ins := roundTrip(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").(*Insert)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Errorf("insert = %+v", ins)
	}
	insSel := roundTrip(t, "INSERT INTO t SELECT a, b FROM s WHERE a > 1").(*Insert)
	if insSel.Query == nil {
		t.Error("insert-select lost query")
	}
	up := roundTrip(t, "UPDATE t SET a = a + 1, b = 'z' WHERE a < 10").(*Update)
	if len(up.Assignments) != 2 || up.Where == nil {
		t.Errorf("update = %+v", up)
	}
	del := roundTrip(t, "DELETE FROM t WHERE a = 1").(*Delete)
	if del.Where == nil {
		t.Errorf("delete = %+v", del)
	}
	roundTrip(t, "DELETE FROM t")
}

func TestParseExplainAndShow(t *testing.T) {
	ex := roundTrip(t, "EXPLAIN SELECT * FROM t").(*Explain)
	if _, ok := ex.Stmt.(*Select); !ok {
		t.Errorf("explain wraps %T", ex.Stmt)
	}
	sh := roundTrip(t, "SHOW TABLES").(*Show)
	if sh.What != "TABLES" {
		t.Errorf("show = %+v", sh)
	}
	roundTrip(t, "SHOW FUNCTIONS")
	roundTrip(t, "SHOW SERVERS")
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript("CREATE TABLE t (a INT); INSERT INTO t VALUES (1);; SELECT * FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("script stmts = %d", len(stmts))
	}
	if _, err := ParseScript("SELECT 1 SELECT 2"); err == nil {
		t.Error("missing semicolon accepted")
	}
	empty, err := ParseScript("  ;; ")
	if err != nil || len(empty) != 0 {
		t.Errorf("empty script = %v, %v", empty, err)
	}
}

func TestParseSelectHelper(t *testing.T) {
	if _, err := ParseSelect("SELECT 1"); err != nil {
		t.Error(err)
	}
	if _, err := ParseSelect("DROP TABLE t"); err == nil {
		t.Error("ParseSelect accepted DDL")
	}
	if _, err := ParseSelect("SELEC 1"); err == nil {
		t.Error("ParseSelect accepted garbage")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"FROB x",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM TABLE (f(1))", // missing mandatory correlation
		"SELECT * FROM (SELECT 1)",   // missing derived-table alias
		"SELECT * FROM t WHERE",      //
		"SELECT a FROM t ORDER",      // ORDER without BY
		"SELECT a FROM t GROUP x",    // GROUP without BY
		"SELECT a FROM t LIMIT x",    //
		"SELECT CASE END",            // CASE without WHEN
		"SELECT CAST(a AS )",         //
		"SELECT CAST(a AS FROB)",     // unknown type
		"CREATE TABLE t (a)",         // column without type
		"CREATE TABLE t (a INT",      // unclosed
		"CREATE FUNCTION f () RETURNS TABLE (x INT) LANGUAGE COBOL RETURN SELECT 1",
		"CREATE FUNCTION f () RETURNS TABLE (x INT) LANGUAGE EXTERNAL NAME f",
		"CREATE SERVER s",                // missing WRAPPER
		"CREATE NICKNAME n FOR s",        // missing .table
		"INSERT INTO t VALUES 1",         // missing parens
		"UPDATE t SET",                   //
		"DELETE t",                       // missing FROM
		"SHOW COLUMNS",                   //
		"SELECT 1; junk",                 //
		"SELECT a FROM t JOIN u",         // missing ON
		"SELECT x IN ()",                 // empty IN list — needs at least one
		"CREATE WRAPPER w OPTIONS (k v)", // option value must be a string
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestIdentQuoting(t *testing.T) {
	// A quoted identifier that collides with a keyword must survive the
	// round trip via re-quoting.
	sel := roundTrip(t, `SELECT "select" FROM "table"`).(*Select)
	ref := sel.Items[0].Expr.(*ColumnRef)
	if ref.Name != "select" {
		t.Errorf("quoted ident = %q", ref.Name)
	}
	if !strings.Contains(sel.String(), `"select"`) {
		t.Errorf("rendering lost quoting: %s", sel.String())
	}
}

// Round-trip property over a corpus of generated-ish statements covering
// every AST node type.
func TestRoundTripCorpus(t *testing.T) {
	corpus := []string{
		"SELECT * FROM t",
		"SELECT t.* FROM t",
		"SELECT a, b AS c FROM t AS x WHERE a = 1",
		"SELECT a FROM t WHERE a IS NULL OR b IS NOT NULL",
		"SELECT MOD(a, 2) FROM t WHERE a <> 3 AND b <= 4 AND c >= 5",
		"SELECT 'a' || 'b' FROM t LIMIT 1",
		"SELECT x FROM TABLE (F()) AS f0",
		"SELECT x FROM TABLE (F(1, 'two', a.b)) AS f1, u",
		"INSERT INTO t VALUES (NULL, TRUE, FALSE)",
		"UPDATE t SET a = CASE WHEN b THEN 1 ELSE 2 END",
		"CREATE TABLE t (a SMALLINT, b BIGINT, c DOUBLE, d BOOLEAN, e VARCHAR(9))",
		"SELECT COUNT(a), MIN(b), MAX(c), AVG(d), SUM(e) FROM t GROUP BY f",
	}
	for _, sql := range corpus {
		roundTrip(t, sql)
	}
}

func TestTokenString(t *testing.T) {
	toks, err := Lex("SELECT 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].String() != "SELECT" || toks[1].String() != "'x'" {
		t.Errorf("token strings: %v %v", toks[0], toks[1])
	}
	if toks[len(toks)-1].String() != "end of input" {
		t.Errorf("EOF string = %q", toks[len(toks)-1])
	}
}

func TestParseViewStatements(t *testing.T) {
	cv := roundTrip(t, "CREATE VIEW v AS SELECT a FROM t WHERE a > 1").(*CreateView)
	if cv.Name != "v" || cv.Query == nil {
		t.Errorf("create view = %+v", cv)
	}
	roundTrip(t, "DROP VIEW v")
	roundTrip(t, "SHOW VIEWS")
	for _, bad := range []string{"CREATE VIEW v SELECT 1", "CREATE VIEW AS SELECT 1", "DROP VIEW"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseSet(t *testing.T) {
	st := roundTrip(t, "SET PARALLELISM 4").(*Set)
	if st.Option != "PARALLELISM" || st.Value != 4 {
		t.Errorf("got %+v", st)
	}
	st = roundTrip(t, "set parallelism -1").(*Set)
	if st.Option != "PARALLELISM" || st.Value != -1 {
		t.Errorf("negative: got %+v", st)
	}
	if _, err := Parse("SET PARALLELISM"); err == nil {
		t.Error("missing value accepted")
	}
	if _, err := Parse("SET 4"); err == nil {
		t.Error("missing option name accepted")
	}
}
