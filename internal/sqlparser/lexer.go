// Package sqlparser implements the SQL dialect of the integration server:
// the DB2-UDB-v7.1-flavoured subset used by the paper, including
// TABLE(fn(args)) AS corr FROM-clause items, CREATE FUNCTION ... RETURNS
// TABLE ... LANGUAGE SQL RETURN SELECT (SQL integration UDTFs), and the
// SQL/MED-style DDL (CREATE WRAPPER / SERVER / NICKNAME) that attaches
// foreign sources.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp
)

// Token is one lexical token with its source position (1-based line/col).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep their case
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "ALL": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true, "ASC": true,
	"DESC": true, "LIMIT": true, "OFFSET": true, "AS": true, "TABLE": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "OUTER": true,
	"CROSS": true, "ON": true, "AND": true, "OR": true, "NOT": true,
	"NULL": true, "TRUE": true, "FALSE": true, "IS": true, "IN": true,
	"BETWEEN": true, "LIKE": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "CAST": true, "CREATE": true, "DROP": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true, "VIEW": true,
	"DELETE": true, "INDEX": true, "FUNCTION": true, "RETURNS": true,
	"RETURN": true, "LANGUAGE": true, "SQL": true, "EXTERNAL": true,
	"WRAPPER": true, "SERVER": true, "NICKNAME": true, "FOR": true,
	"OPTIONS": true, "EXPLAIN": true, "ANALYZE": true, "CALL": true, "UNION": true,
	"EXISTS": true, "PRIMARY": true, "KEY": true, "SHOW": true,
	"TABLES": true, "FUNCTIONS": true, "SERVERS": true, "VIEWS": true,
}

// Lex tokenises a SQL string. It returns a descriptive error with line and
// column for unterminated strings, malformed numbers, or stray bytes.
func Lex(input string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(input)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if input[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < n && input[i+1] == '*':
			startLine, startCol := line, col
			advance(2)
			closed := false
			for i+1 < n {
				if input[i] == '*' && input[i+1] == '/' {
					advance(2)
					closed = true
					break
				}
				advance(1)
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated block comment at line %d col %d", startLine, startCol)
			}
		case c == '\'':
			startLine, startCol := line, col
			advance(1)
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						advance(2)
						continue
					}
					advance(1)
					closed = true
					break
				}
				sb.WriteByte(input[i])
				advance(1)
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at line %d col %d", startLine, startCol)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Line: startLine, Col: startCol})
		case c == '"':
			startLine, startCol := line, col
			advance(1)
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '"' {
					advance(1)
					closed = true
					break
				}
				sb.WriteByte(input[i])
				advance(1)
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated quoted identifier at line %d col %d", startLine, startCol)
			}
			toks = append(toks, Token{Kind: TokIdent, Text: sb.String(), Line: startLine, Col: startCol})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			startLine, startCol := line, col
			j := i
			seenDot := false
			seenExp := false
			for j < n {
				d := input[j]
				if d >= '0' && d <= '9' {
					j++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					j++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && j > i {
					seenExp = true
					j++
					if j < n && (input[j] == '+' || input[j] == '-') {
						j++
					}
					continue
				}
				break
			}
			text := input[i:j]
			if strings.HasSuffix(text, "e") || strings.HasSuffix(text, "E") ||
				strings.HasSuffix(text, "+") || strings.HasSuffix(text, "-") {
				return nil, fmt.Errorf("sql: malformed number %q at line %d col %d", text, startLine, startCol)
			}
			advance(j - i)
			toks = append(toks, Token{Kind: TokNumber, Text: text, Line: startLine, Col: startCol})
		case isIdentStart(rune(c)):
			startLine, startCol := line, col
			j := i
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			advance(j - i)
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Line: startLine, Col: startCol})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Line: startLine, Col: startCol})
			}
		default:
			startLine, startCol := line, col
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=", "||":
				advance(2)
				toks = append(toks, Token{Kind: TokOp, Text: two, Line: startLine, Col: startCol})
				continue
			}
			switch c {
			case '(', ')', ',', '.', ';', '*', '+', '-', '/', '%', '=', '<', '>':
				advance(1)
				toks = append(toks, Token{Kind: TokOp, Text: string(c), Line: startLine, Col: startCol})
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at line %d col %d", c, startLine, startCol)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || r == '#' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
