package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"fedwf/internal/types"
)

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.acceptOp(";")
	if p.peek().Kind != TokEOF {
		return nil, p.errf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

// ParseSelect parses a query expression; the input must be a SELECT.
func ParseSelect(input string) (*Select, error) {
	stmt, err := Parse(input)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*Select)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT statement, got %T", stmt)
	}
	return sel, nil
}

// ParseScript parses a semicolon-separated sequence of statements,
// ignoring empty statements.
func ParseScript(input string) ([]Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Statement
	for {
		for p.acceptOp(";") {
		}
		if p.peek().Kind == TokEOF {
			return stmts, nil
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, stmt)
		if p.peek().Kind != TokEOF && !p.peekOp(";") {
			return nil, p.errf("expected ';' between statements, got %s", p.peek())
		}
	}
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) peek2() Token { // token after next, EOF-safe
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("sql: line %d col %d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *parser) peekOp(op string) bool {
	t := p.peek()
	return t.Kind == TokOp && t.Text == op
}

func (p *parser) acceptOp(op string) bool {
	if p.peekOp(op) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, got %s", op, p.peek())
	}
	return nil
}

// expectIdent consumes an identifier. Non-reserved usage of keywords is
// not supported; quoted identifiers lex as TokIdent already.
func (p *parser) expectIdent(what string) (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", p.errf("expected %s, got %s", what, t)
	}
	p.pos++
	return t.Text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, p.errf("expected a statement, got %s", t)
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "EXPLAIN":
		p.next()
		analyze := false
		if a := p.peek(); a.Kind == TokKeyword && a.Text == "ANALYZE" {
			p.next()
			analyze = true
		}
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: inner, Analyze: analyze}, nil
	case "SHOW":
		p.next()
		w := p.peek()
		if w.Kind != TokKeyword || (w.Text != "TABLES" && w.Text != "FUNCTIONS" && w.Text != "SERVERS" && w.Text != "VIEWS") {
			return nil, p.errf("expected TABLES, FUNCTIONS, SERVERS or VIEWS after SHOW, got %s", w)
		}
		p.next()
		return &Show{What: w.Text}, nil
	case "SET":
		p.next()
		o := p.peek()
		if o.Kind != TokIdent && o.Kind != TokKeyword {
			return nil, p.errf("expected an option name after SET, got %s", o)
		}
		p.next()
		neg := p.acceptOp("-")
		n, err := p.parseIntLiteral("SET " + o.Text)
		if err != nil {
			return nil, err
		}
		if neg {
			n = -n
		}
		return &Set{Option: strings.ToUpper(o.Text), Value: n}, nil
	default:
		return nil, p.errf("unsupported statement %s", t.Text)
	}
}

// ---------------------------------------------------------------- SELECT

// parseSelect parses a full query expression: a select core, optional
// UNION [ALL] members (select cores, per standard SQL), and the chain's
// ORDER BY / LIMIT / OFFSET.
func (p *parser) parseSelect() (*Select, error) {
	sel, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("UNION") {
		all := p.acceptKeyword("ALL")
		branch, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		sel.Unions = append(sel.Unions, UnionBranch{All: all, Query: branch})
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseIntLiteral("LIMIT")
		if err != nil {
			return nil, err
		}
		sel.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.parseIntLiteral("OFFSET")
		if err != nil {
			return nil, err
		}
		sel.Offset = n
	}
	return sel, nil
}

// parseSelectCore parses SELECT ... FROM ... WHERE ... GROUP BY ... HAVING
// without set operators or ordering.
func (p *parser) parseSelectCore() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		for {
			f, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, f)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	return sel, nil
}

func (p *parser) parseIntLiteral(what string) (int64, error) {
	t := p.peek()
	if t.Kind != TokNumber {
		return 0, p.errf("expected integer after %s, got %s", what, t)
	}
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, p.errf("%s wants an integer, got %s", what, t.Text)
	}
	p.next()
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	// corr.* form: ident '.' '*'
	if p.peek().Kind == TokIdent && p.peek2().Kind == TokOp && p.peek2().Text == "." {
		if p.pos+2 < len(p.toks) && p.toks[p.pos+2].Kind == TokOp && p.toks[p.pos+2].Text == "*" {
			q := p.next().Text
			p.next() // '.'
			p.next() // '*'
			return SelectItem{Star: true, Qualifier: q}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent("alias")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	left, err := p.parseFromPrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekKeyword("JOIN") || p.peekKeyword("INNER"):
			p.acceptKeyword("INNER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parseFromPrimary()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			left = &JoinRef{Type: InnerJoin, Left: left, Right: right, On: on}
		case p.peekKeyword("LEFT"):
			p.next()
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parseFromPrimary()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			left = &JoinRef{Type: LeftJoin, Left: left, Right: right, On: on}
		case p.peekKeyword("CROSS"):
			p.next()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parseFromPrimary()
			if err != nil {
				return nil, err
			}
			left = &JoinRef{Type: CrossJoin, Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseFromPrimary() (FromItem, error) {
	switch {
	case p.peekKeyword("TABLE"):
		// TABLE ( Fn(arg, ...) ) [AS] corr  — correlation name mandatory,
		// matching the DB2 UDB v7.1 syntax quoted in the paper.
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		name, err := p.expectIdent("table function name")
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var args []Expr
		if !p.peekOp(")") {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.acceptOp(",") {
					break
				}
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		p.acceptKeyword("AS")
		corr, err := p.expectIdent("correlation name (mandatory after TABLE(...))")
		if err != nil {
			return nil, err
		}
		return &TableFuncRef{Name: name, Args: args, Alias: corr}, nil
	case p.peekOp("("):
		p.next()
		if !p.peekKeyword("SELECT") {
			return nil, p.errf("expected SELECT in derived table, got %s", p.peek())
		}
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		p.acceptKeyword("AS")
		corr, err := p.expectIdent("correlation name for derived table")
		if err != nil {
			return nil, err
		}
		return &SubqueryRef{Query: q, Alias: corr}, nil
	default:
		name, err := p.expectIdent("table name")
		if err != nil {
			return nil, err
		}
		ref := &TableRef{Name: name}
		if p.acceptKeyword("AS") {
			a, err := p.expectIdent("correlation name")
			if err != nil {
				return nil, err
			}
			ref.Alias = a
		} else if p.peek().Kind == TokIdent {
			ref.Alias = p.next().Text
		}
		return ref, nil
	}
}

// ------------------------------------------------------------------ DDL

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("TABLE"):
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex()
	case p.acceptKeyword("VIEW"):
		name, err := p.expectIdent("view name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateView{Name: name, Query: q}, nil
	case p.acceptKeyword("FUNCTION"):
		return p.parseCreateFunction()
	case p.acceptKeyword("WRAPPER"):
		name, err := p.expectIdent("wrapper name")
		if err != nil {
			return nil, err
		}
		opts, err := p.parseOptions()
		if err != nil {
			return nil, err
		}
		return &CreateWrapper{Name: name, Options: opts}, nil
	case p.acceptKeyword("SERVER"):
		name, err := p.expectIdent("server name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("WRAPPER"); err != nil {
			return nil, err
		}
		w, err := p.expectIdent("wrapper name")
		if err != nil {
			return nil, err
		}
		opts, err := p.parseOptions()
		if err != nil {
			return nil, err
		}
		return &CreateServer{Name: name, Wrapper: w, Options: opts}, nil
	case p.acceptKeyword("NICKNAME"):
		name, err := p.expectIdent("nickname")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("FOR"); err != nil {
			return nil, err
		}
		server, err := p.expectIdent("server name")
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("."); err != nil {
			return nil, err
		}
		remote, err := p.expectIdent("remote table name")
		if err != nil {
			return nil, err
		}
		return &CreateNickname{Name: name, Server: server, Remote: remote}, nil
	default:
		return nil, p.errf("unsupported CREATE %s", p.peek())
	}
}

func (p *parser) parseCreateTable() (Statement, error) {
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		cn, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		ct, err := p.parseType()
		if err != nil {
			return nil, err
		}
		col := ColumnDef{Name: cn, Type: ct}
		if p.acceptKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			col.PrimaryKey = true
		}
		cols = append(cols, col)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CreateTable{Name: name, Columns: cols}, nil
}

func (p *parser) parseCreateIndex() (Statement, error) {
	name, err := p.expectIdent("index name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	col, err := p.expectIdent("column name")
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Column: col}, nil
}

func (p *parser) parseCreateFunction() (Statement, error) {
	name, err := p.expectIdent("function name")
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var params []ParamDef
	if !p.peekOp(")") {
		for {
			pn, err := p.expectIdent("parameter name")
			if err != nil {
				return nil, err
			}
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			params = append(params, ParamDef{Name: pn, Type: pt})
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("RETURNS"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var rets types.Schema
	for {
		rn, err := p.expectIdent("result column name")
		if err != nil {
			return nil, err
		}
		rt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		rets = append(rets, types.Column{Name: rn, Type: rt})
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("LANGUAGE"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("SQL"):
		if err := p.expectKeyword("RETURN"); err != nil {
			return nil, err
		}
		body, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateFunction{Name: name, Params: params, Returns: rets, Language: "SQL", Body: body}, nil
	case p.acceptKeyword("EXTERNAL"):
		// LANGUAGE EXTERNAL NAME 'registered-host-implementation'
		n := p.peek()
		if n.Kind != TokIdent || !strings.EqualFold(n.Text, "NAME") {
			return nil, p.errf("expected NAME after LANGUAGE EXTERNAL, got %s", n)
		}
		p.next()
		s := p.peek()
		if s.Kind != TokString {
			return nil, p.errf("expected string literal after EXTERNAL NAME, got %s", s)
		}
		p.next()
		return &CreateFunction{Name: name, Params: params, Returns: rets, Language: "EXTERNAL", ExternalName: s.Text}, nil
	default:
		return nil, p.errf("expected SQL or EXTERNAL after LANGUAGE, got %s", p.peek())
	}
}

func (p *parser) parseOptions() (map[string]string, error) {
	if !p.acceptKeyword("OPTIONS") {
		return nil, nil
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	opts := make(map[string]string)
	for {
		k, err := p.expectIdent("option name")
		if err != nil {
			return nil, err
		}
		v := p.peek()
		if v.Kind != TokString {
			return nil, p.errf("expected string value for option %s, got %s", k, v)
		}
		p.next()
		opts[strings.ToLower(k)] = v.Text
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return opts, nil
}

func (p *parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("TABLE"):
		name, err := p.expectIdent("table name")
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name}, nil
	case p.acceptKeyword("FUNCTION"):
		name, err := p.expectIdent("function name")
		if err != nil {
			return nil, err
		}
		return &DropFunction{Name: name}, nil
	case p.acceptKeyword("VIEW"):
		name, err := p.expectIdent("view name")
		if err != nil {
			return nil, err
		}
		return &DropView{Name: name}, nil
	default:
		return nil, p.errf("unsupported DROP %s", p.peek())
	}
}

// ------------------------------------------------------------------ DML

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.acceptOp("(") {
		for {
			c, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.peekKeyword("SELECT") {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Query = q
		return ins, nil
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	u := &Update{Table: table}
	for {
		col, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Assignments = append(u.Assignments, Assignment{Column: col, Expr: e})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = e
	}
	return u, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: table}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = e
	}
	return d, nil
}

// parseType parses a SQL type name: IDENT [(n)] with the special two-word
// form DOUBLE PRECISION.
func (p *parser) parseType() (types.Type, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return types.Type{}, p.errf("expected a type name, got %s", t)
	}
	p.next()
	name := t.Text
	if strings.EqualFold(name, "DOUBLE") && p.peek().Kind == TokIdent &&
		strings.EqualFold(p.peek().Text, "PRECISION") {
		p.next()
	}
	if p.acceptOp("(") {
		nTok := p.peek()
		if nTok.Kind != TokNumber {
			return types.Type{}, p.errf("expected length in type %s, got %s", name, nTok)
		}
		p.next()
		if err := p.expectOp(")"); err != nil {
			return types.Type{}, err
		}
		name = fmt.Sprintf("%s(%s)", name, nTok.Text)
	}
	ty, err := types.ParseType(name)
	if err != nil {
		return types.Type{}, p.errf("%v", err)
	}
	return ty, nil
}

// ------------------------------------------------------------ expressions

// parseExpr parses a full boolean expression (lowest precedence: OR).
func (p *parser) parseExpr() (Expr, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		not := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: left, Not: not}, nil
	}
	not := false
	if p.peekKeyword("NOT") {
		// Only consume NOT when followed by BETWEEN / IN / LIKE.
		nx := p.peek2()
		if nx.Kind == TokKeyword && (nx.Text == "BETWEEN" || nx.Text == "IN" || nx.Text == "LIKE") {
			p.next()
			not = true
		}
	}
	switch {
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{X: left, Lo: lo, Hi: hi, Not: not}, nil
	case p.acceptKeyword("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InList{X: left, List: list, Not: not}, nil
	case p.acceptKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Like{X: left, Pattern: pat, Not: not}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.acceptOp(op) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinaryExpr{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("+"):
			op = "+"
		case p.acceptOp("-"):
			op = "-"
		case p.acceptOp("||"):
			op = "||"
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("*"):
			op = "*"
		case p.acceptOp("/"):
			op = "/"
		case p.acceptOp("%"):
			op = "%"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	p.acceptOp("+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &Literal{Val: types.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &Literal{Val: types.NewInt(n)}, nil
	case TokString:
		p.next()
		return &Literal{Val: types.NewString(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Val: types.Null}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: types.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: types.NewBool(false)}, nil
		case "CAST":
			p.next()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &CastExpr{X: x, Type: ty}, nil
		case "CASE":
			return p.parseCase()
		}
		return nil, p.errf("unexpected keyword %s in expression", t.Text)
	case TokOp:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected %s in expression", t)
	case TokIdent:
		p.next()
		name := t.Text
		// Function call?
		if p.acceptOp("(") {
			call := &FuncCall{Name: name}
			if p.acceptOp("*") {
				call.Star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if p.acceptKeyword("DISTINCT") {
				call.Distinct = true
			}
			if !p.peekOp(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.acceptOp(",") {
						break
					}
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		// Qualified column: ident '.' ident
		if p.acceptOp(".") {
			col, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Qualifier: name, Name: col}, nil
		}
		return &ColumnRef{Name: name}, nil
	default:
		return nil, p.errf("unexpected %s in expression", t)
	}
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func optionsString(opts map[string]string) string {
	if len(opts) == 0 {
		return ""
	}
	keys := make([]string, 0, len(opts))
	for k := range opts {
		keys = append(keys, k)
	}
	// Deterministic rendering for round-trip equality.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + " '" + strings.ReplaceAll(opts[k], "'", "''") + "'"
	}
	return " OPTIONS (" + strings.Join(parts, ", ") + ")"
}
