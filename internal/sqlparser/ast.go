package sqlparser

import (
	"fmt"
	"strings"

	"fedwf/internal/types"
)

// Statement is any parsed SQL statement. String renders canonical SQL that
// reparses to an equal AST (used by the round-trip property tests and by
// the federated pushdown, which ships statement text to remote servers).
type Statement interface {
	stmt()
	String() string
}

// Expr is any scalar expression.
type Expr interface {
	expr()
	String() string
}

// ---------------------------------------------------------------- SELECT

// Select is a query expression. When Unions is non-empty, the statement
// is a UNION chain: this select is the first member, OrderBy/Limit/Offset
// apply to the combined result, and the union members themselves carry no
// ORDER BY or LIMIT (standard SQL forbids them there).
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	Unions   []UnionBranch
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
	Offset   int64 // 0 when absent
}

func (*Select) stmt() {}

// UnionBranch is one further member of a UNION chain.
type UnionBranch struct {
	All   bool // UNION ALL keeps duplicates
	Query *Select
}

// SelectItem is one entry of the projection list.
type SelectItem struct {
	Star      bool   // SELECT * or corr.*
	Qualifier string // correlation for corr.*
	Expr      Expr   // nil when Star
	Alias     string
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// FromItem is one entry of the FROM clause.
type FromItem interface {
	fromItem()
	String() string
	// Corr returns the correlation name exposed by this item ("" for joins).
	Corr() string
}

// TableRef references a base table or nickname.
type TableRef struct {
	Name  string
	Alias string
}

func (*TableRef) fromItem() {}

// Corr returns the exposed correlation name.
func (t *TableRef) Corr() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

func (t *TableRef) String() string {
	if t.Alias != "" {
		return ident(t.Name) + " AS " + ident(t.Alias)
	}
	return ident(t.Name)
}

// TableFuncRef references a table function: TABLE (Fn(args)) AS corr.
// The paper's UDTF mechanism; the correlation name is mandatory, matching
// DB2 UDB v7.1.
type TableFuncRef struct {
	Name  string
	Args  []Expr
	Alias string
}

func (*TableFuncRef) fromItem() {}

// Corr returns the mandatory correlation name.
func (t *TableFuncRef) Corr() string { return t.Alias }

func (t *TableFuncRef) String() string {
	args := make([]string, len(t.Args))
	for i, a := range t.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("TABLE (%s(%s)) AS %s", ident(t.Name), strings.Join(args, ", "), ident(t.Alias))
}

// SubqueryRef is a derived table: (SELECT ...) AS corr.
type SubqueryRef struct {
	Query *Select
	Alias string
}

func (*SubqueryRef) fromItem() {}

// Corr returns the derived table's correlation name.
func (s *SubqueryRef) Corr() string { return s.Alias }

func (s *SubqueryRef) String() string {
	return "(" + s.Query.String() + ") AS " + ident(s.Alias)
}

// JoinType enumerates supported join operators.
type JoinType int

// Join types.
const (
	InnerJoin JoinType = iota
	LeftJoin
	CrossJoin
)

func (j JoinType) String() string {
	switch j {
	case LeftJoin:
		return "LEFT JOIN"
	case CrossJoin:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// JoinRef is an explicit join of two FROM items.
type JoinRef struct {
	Type  JoinType
	Left  FromItem
	Right FromItem
	On    Expr // nil for CROSS JOIN
}

func (*JoinRef) fromItem() {}

// Corr returns "" — joins expose their operands' correlations.
func (j *JoinRef) Corr() string { return "" }

func (j *JoinRef) String() string {
	s := j.Left.String() + " " + j.Type.String() + " " + j.Right.String()
	if j.On != nil {
		s += " ON " + j.On.String()
	}
	return s
}

func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star && it.Qualifier != "":
			b.WriteString(ident(it.Qualifier) + ".*")
		case it.Star:
			b.WriteString("*")
		default:
			b.WriteString(it.Expr.String())
			if it.Alias != "" {
				b.WriteString(" AS " + ident(it.Alias))
			}
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, f := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.String())
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	for _, u := range s.Unions {
		if u.All {
			b.WriteString(" UNION ALL ")
		} else {
			b.WriteString(" UNION ")
		}
		b.WriteString(u.Query.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	if s.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", s.Offset)
	}
	return b.String()
}

// ------------------------------------------------------------------ DDL

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       types.Type
	PrimaryKey bool
}

// CreateTable creates a base table.
type CreateTable struct {
	Name    string
	Columns []ColumnDef
}

func (*CreateTable) stmt() {}

func (c *CreateTable) String() string {
	cols := make([]string, len(c.Columns))
	for i, col := range c.Columns {
		cols[i] = ident(col.Name) + " " + col.Type.String()
		if col.PrimaryKey {
			cols[i] += " PRIMARY KEY"
		}
	}
	return "CREATE TABLE " + ident(c.Name) + " (" + strings.Join(cols, ", ") + ")"
}

// CreateView defines a named query: the paper's "homogenized view"
// applications refer to in the upper tier of the integration
// architecture. Views expand like derived tables during planning, so they
// may reference base tables, nicknames, federated functions, and other
// views.
type CreateView struct {
	Name  string
	Query *Select
}

func (*CreateView) stmt() {}

func (v *CreateView) String() string {
	return "CREATE VIEW " + ident(v.Name) + " AS " + v.Query.String()
}

// DropView removes a view.
type DropView struct{ Name string }

func (*DropView) stmt() {}

func (d *DropView) String() string { return "DROP VIEW " + ident(d.Name) }

// DropTable drops a base table.
type DropTable struct{ Name string }

func (*DropTable) stmt() {}

func (d *DropTable) String() string { return "DROP TABLE " + ident(d.Name) }

// CreateIndex creates a hash index.
type CreateIndex struct {
	Name   string
	Table  string
	Column string
}

func (*CreateIndex) stmt() {}

func (c *CreateIndex) String() string {
	return fmt.Sprintf("CREATE INDEX %s ON %s (%s)", ident(c.Name), ident(c.Table), ident(c.Column))
}

// ParamDef is one parameter of a CREATE FUNCTION.
type ParamDef struct {
	Name string
	Type types.Type
}

// CreateFunction registers a table function. LANGUAGE SQL functions carry
// a single RETURN SELECT body (the paper's SQL I-UDTF); LANGUAGE EXTERNAL
// functions name a host implementation registered with the engine (the
// paper's Java A-UDTFs and Java I-UDTFs, realised in Go here).
type CreateFunction struct {
	Name         string
	Params       []ParamDef
	Returns      types.Schema
	Language     string // "SQL" or "EXTERNAL"
	Body         *Select
	ExternalName string
}

func (*CreateFunction) stmt() {}

func (c *CreateFunction) String() string {
	params := make([]string, len(c.Params))
	for i, p := range c.Params {
		params[i] = ident(p.Name) + " " + p.Type.String()
	}
	rets := make([]string, len(c.Returns))
	for i, r := range c.Returns {
		rets[i] = ident(r.Name) + " " + r.Type.String()
	}
	s := fmt.Sprintf("CREATE FUNCTION %s (%s) RETURNS TABLE (%s)",
		ident(c.Name), strings.Join(params, ", "), strings.Join(rets, ", "))
	if strings.EqualFold(c.Language, "SQL") {
		s += " LANGUAGE SQL RETURN " + c.Body.String()
	} else {
		s += " LANGUAGE EXTERNAL NAME '" + strings.ReplaceAll(c.ExternalName, "'", "''") + "'"
	}
	return s
}

// DropFunction unregisters a table function.
type DropFunction struct{ Name string }

func (*DropFunction) stmt() {}

func (d *DropFunction) String() string { return "DROP FUNCTION " + ident(d.Name) }

// CreateWrapper registers a SQL/MED wrapper implementation by name.
type CreateWrapper struct {
	Name    string
	Options map[string]string
}

func (*CreateWrapper) stmt() {}

func (c *CreateWrapper) String() string {
	return "CREATE WRAPPER " + ident(c.Name) + optionsString(c.Options)
}

// CreateServer attaches a foreign server through a wrapper.
type CreateServer struct {
	Name    string
	Wrapper string
	Options map[string]string
}

func (*CreateServer) stmt() {}

func (c *CreateServer) String() string {
	return "CREATE SERVER " + ident(c.Name) + " WRAPPER " + ident(c.Wrapper) + optionsString(c.Options)
}

// CreateNickname exposes a remote table of a foreign server under a local
// name.
type CreateNickname struct {
	Name   string
	Server string
	Remote string
}

func (*CreateNickname) stmt() {}

func (c *CreateNickname) String() string {
	return fmt.Sprintf("CREATE NICKNAME %s FOR %s.%s", ident(c.Name), ident(c.Server), ident(c.Remote))
}

// ------------------------------------------------------------------ DML

// Insert adds rows, either literal VALUES or the result of a query.
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Query   *Select
}

func (*Insert) stmt() {}

func (ins *Insert) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO " + ident(ins.Table))
	if len(ins.Columns) > 0 {
		cols := make([]string, len(ins.Columns))
		for i, c := range ins.Columns {
			cols[i] = ident(c)
		}
		b.WriteString(" (" + strings.Join(cols, ", ") + ")")
	}
	if ins.Query != nil {
		b.WriteString(" " + ins.Query.String())
		return b.String()
	}
	b.WriteString(" VALUES ")
	for i, row := range ins.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		vals := make([]string, len(row))
		for j, e := range row {
			vals[j] = e.String()
		}
		b.WriteString("(" + strings.Join(vals, ", ") + ")")
	}
	return b.String()
}

// Assignment is one SET clause of an UPDATE.
type Assignment struct {
	Column string
	Expr   Expr
}

// Update rewrites rows in place.
type Update struct {
	Table       string
	Assignments []Assignment
	Where       Expr
}

func (*Update) stmt() {}

func (u *Update) String() string {
	sets := make([]string, len(u.Assignments))
	for i, a := range u.Assignments {
		sets[i] = ident(a.Column) + " = " + a.Expr.String()
	}
	s := "UPDATE " + ident(u.Table) + " SET " + strings.Join(sets, ", ")
	if u.Where != nil {
		s += " WHERE " + u.Where.String()
	}
	return s
}

// Delete removes rows.
type Delete struct {
	Table string
	Where Expr
}

func (*Delete) stmt() {}

func (d *Delete) String() string {
	s := "DELETE FROM " + ident(d.Table)
	if d.Where != nil {
		s += " WHERE " + d.Where.String()
	}
	return s
}

// ---------------------------------------------------------------- other

// Explain wraps a statement for plan display; with Analyze set the plan
// is executed and annotated with actual row counts and times.
type Explain struct {
	Stmt    Statement
	Analyze bool
}

func (*Explain) stmt() {}

func (e *Explain) String() string {
	if e.Analyze {
		return "EXPLAIN ANALYZE " + e.Stmt.String()
	}
	return "EXPLAIN " + e.Stmt.String()
}

// Show lists catalog objects: SHOW TABLES | FUNCTIONS | SERVERS.
type Show struct{ What string }

func (*Show) stmt() {}

func (s *Show) String() string { return "SHOW " + s.What }

// Set assigns an integer engine option: SET <option> <n>
// (e.g. SET PARALLELISM 4).
type Set struct {
	Option string // upper-cased
	Value  int64
}

func (*Set) stmt() {}

func (s *Set) String() string { return fmt.Sprintf("SET %s %d", s.Option, s.Value) }

// ------------------------------------------------------------ expressions

// Literal is a constant value.
type Literal struct{ Val types.Value }

func (*Literal) expr() {}

func (l *Literal) String() string { return l.Val.String() }

// ColumnRef names a column, an input parameter of the enclosing SQL
// function (FnName.ParamName), or a correlation output (corr.Col); which
// one is decided during planning.
type ColumnRef struct {
	Qualifier string
	Name      string
}

func (*ColumnRef) expr() {}

func (c *ColumnRef) String() string {
	if c.Qualifier != "" {
		return ident(c.Qualifier) + "." + ident(c.Name)
	}
	return ident(c.Name)
}

// FuncCall is a scalar or aggregate function call.
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

func (*FuncCall) expr() {}

func (f *FuncCall) String() string {
	if f.Star {
		return strings.ToUpper(f.Name) + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return strings.ToUpper(f.Name) + "(" + d + strings.Join(args, ", ") + ")"
}

// BinaryExpr applies an infix operator.
type BinaryExpr struct {
	Op   string // +,-,*,/,%,||,=,<>,<,<=,>,>=,AND,OR
	L, R Expr
}

func (*BinaryExpr) expr() {}

func (b *BinaryExpr) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// UnaryExpr applies a prefix operator: NOT or unary minus.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	X  Expr
}

func (*UnaryExpr) expr() {}

func (u *UnaryExpr) String() string {
	if u.Op == "-" {
		return "(-" + u.X.String() + ")"
	}
	return "(" + u.Op + " " + u.X.String() + ")"
}

// IsNull tests X IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

func (*IsNull) expr() {}

func (i *IsNull) String() string {
	if i.Not {
		return "(" + i.X.String() + " IS NOT NULL)"
	}
	return "(" + i.X.String() + " IS NULL)"
}

// Between tests X [NOT] BETWEEN Lo AND Hi.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

func (*Between) expr() {}

func (b *Between) String() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return "(" + b.X.String() + " " + not + "BETWEEN " + b.Lo.String() + " AND " + b.Hi.String() + ")"
}

// InList tests X [NOT] IN (e1, e2, ...).
type InList struct {
	X    Expr
	List []Expr
	Not  bool
}

func (*InList) expr() {}

func (i *InList) String() string {
	items := make([]string, len(i.List))
	for j, e := range i.List {
		items[j] = e.String()
	}
	not := ""
	if i.Not {
		not = "NOT "
	}
	return "(" + i.X.String() + " " + not + "IN (" + strings.Join(items, ", ") + "))"
}

// Like tests X [NOT] LIKE pattern, with SQL % and _ wildcards.
type Like struct {
	X, Pattern Expr
	Not        bool
}

func (*Like) expr() {}

func (l *Like) String() string {
	not := ""
	if l.Not {
		not = "NOT "
	}
	return "(" + l.X.String() + " " + not + "LIKE " + l.Pattern.String() + ")"
}

// WhenClause is one WHEN cond THEN result arm of a CASE.
type WhenClause struct {
	Cond   Expr
	Result Expr
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr
}

func (*CaseExpr) expr() {}

func (c *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		b.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Result.String())
	}
	if c.Else != nil {
		b.WriteString(" ELSE " + c.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	X    Expr
	Type types.Type
}

func (*CastExpr) expr() {}

func (c *CastExpr) String() string {
	return "CAST(" + c.X.String() + " AS " + c.Type.String() + ")"
}

// ident renders an identifier, quoting it when it collides with a keyword
// or contains characters outside the plain identifier alphabet.
func ident(s string) string {
	if s == "" {
		return `""`
	}
	plain := isIdentStart(rune(s[0]))
	if plain {
		for _, r := range s {
			if !isIdentPart(r) {
				plain = false
				break
			}
		}
	}
	if plain && !keywords[strings.ToUpper(s)] {
		return s
	}
	return `"` + s + `"`
}
