// Package catalog implements the FDBS system catalog: base tables,
// registered table functions (the UDTF mechanism), foreign servers
// attached through SQL/MED-style wrappers, and nicknames for remote
// tables.
//
// Table functions are the paper's central extension point. Three flavours
// exist:
//
//   - SQL functions (CREATE FUNCTION ... LANGUAGE SQL RETURN SELECT):
//     the enhanced SQL UDTF architecture's integration UDTFs;
//   - Go functions (LANGUAGE EXTERNAL): host-implemented functions used
//     for access UDTFs, Go integration UDTFs, and the workflow UDTF;
//   - any further implementation of the TableFunc interface.
package catalog

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"fedwf/internal/simlat"
	"fedwf/internal/sqlparser"
	"fedwf/internal/storage"
	"fedwf/internal/types"
)

// QueryRunner executes a nested SELECT with bound parameters. It is
// implemented by the engine session and handed to table functions so SQL
// UDTF bodies can run without the catalog depending on the executor.
type QueryRunner interface {
	RunSelect(sel *sqlparser.Select, params map[string]types.Value, task *simlat.Task) (*types.Table, error)
}

// TableFunc is a registered table function (UDTF). Invoke receives the
// engine runner (for nested SQL), the request's cost meter, and the
// argument values; it returns a materialised table matching Schema.
type TableFunc interface {
	Name() string
	Params() []types.Column
	Schema() types.Schema
	Invoke(rt QueryRunner, task *simlat.Task, args []types.Value) (*types.Table, error)
}

// CtxTableFunc is the context-aware extension of TableFunc (the
// database/sql pattern: optional interfaces evolve APIs without breaking
// existing implementations). The executor prefers InvokeContext whenever a
// function implements it, so deadlines and cancellation reach the
// integration layers; plain TableFunc implementations keep working with a
// background context.
type CtxTableFunc interface {
	TableFunc
	InvokeContext(ctx context.Context, rt QueryRunner, task *simlat.Task, args []types.Value) (*types.Table, error)
}

// InvokeFunc dispatches to f.InvokeContext when implemented, else to the
// legacy Invoke. All call sites that hold a context use it.
func InvokeFunc(ctx context.Context, f TableFunc, rt QueryRunner, task *simlat.Task, args []types.Value) (*types.Table, error) {
	if cf, ok := f.(CtxTableFunc); ok {
		return cf.InvokeContext(ctx, rt, task, args)
	}
	return f.Invoke(rt, task, args)
}

// BatchTableFunc is the set-oriented extension of TableFunc (again the
// optional-interface pattern): one invocation carries N argument rows and
// returns one table per row, letting the implementation amortize its
// per-call setup — RPC round trips, workflow instances, JVM boots — across
// the whole batch.
type BatchTableFunc interface {
	TableFunc
	InvokeBatch(ctx context.Context, rt QueryRunner, task *simlat.Task, rows [][]types.Value) ([]*types.Table, error)
}

// InvokeFuncBatch dispatches the batch to f.InvokeBatch when implemented,
// else degrades to a per-row InvokeFunc loop so every function stays
// callable from a batched plan.
func InvokeFuncBatch(ctx context.Context, f TableFunc, rt QueryRunner, task *simlat.Task, rows [][]types.Value) ([]*types.Table, error) {
	if bf, ok := f.(BatchTableFunc); ok {
		out, err := bf.InvokeBatch(ctx, rt, task, rows)
		if err != nil {
			return nil, err
		}
		if len(out) != len(rows) {
			return nil, fmt.Errorf("catalog: %s batch returned %d tables for %d rows", f.Name(), len(out), len(rows))
		}
		return out, nil
	}
	out := make([]*types.Table, len(rows))
	for i, args := range rows {
		res, err := InvokeFunc(ctx, f, rt, task, args)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// ContextRunner is the context-aware extension of QueryRunner, implemented
// by the engine session.
type ContextRunner interface {
	QueryRunner
	RunSelectContext(ctx context.Context, sel *sqlparser.Select, params map[string]types.Value, task *simlat.Task) (*types.Table, error)
}

// RunSelectOn dispatches to rt.RunSelectContext when implemented.
func RunSelectOn(ctx context.Context, rt QueryRunner, sel *sqlparser.Select, params map[string]types.Value, task *simlat.Task) (*types.Table, error) {
	if cr, ok := rt.(ContextRunner); ok {
		return cr.RunSelectContext(ctx, sel, params, task)
	}
	return rt.RunSelect(sel, params, task)
}

// ForeignServer is a data source attached via a wrapper. The planner
// pushes single-server subqueries down through Query.
type ForeignServer interface {
	Name() string
	// TableSchema describes a remote table, for nickname creation.
	TableSchema(remote string) (types.Schema, error)
	// Query executes a pushed-down SELECT remotely.
	Query(sel *sqlparser.Select, task *simlat.Task) (*types.Table, error)
}

// ContextForeignServer is the context-aware extension of ForeignServer.
type ContextForeignServer interface {
	ForeignServer
	QueryContext(ctx context.Context, sel *sqlparser.Select, task *simlat.Task) (*types.Table, error)
}

// SchemaContextForeignServer is implemented by foreign servers whose
// schema discovery honours the caller's context (deadline, cancellation).
type SchemaContextForeignServer interface {
	TableSchemaContext(ctx context.Context, remote string) (types.Schema, error)
}

// ServerTableSchema fetches a remote table's schema, dispatching to
// TableSchemaContext when the server implements it.
func ServerTableSchema(ctx context.Context, srv ForeignServer, remote string) (types.Schema, error) {
	if cs, ok := srv.(SchemaContextForeignServer); ok {
		return cs.TableSchemaContext(ctx, remote)
	}
	return srv.TableSchema(remote)
}

// QueryServer dispatches to srv.QueryContext when implemented.
func QueryServer(ctx context.Context, srv ForeignServer, sel *sqlparser.Select, task *simlat.Task) (*types.Table, error) {
	if cs, ok := srv.(ContextForeignServer); ok {
		return cs.QueryContext(ctx, sel, task)
	}
	return srv.Query(sel, task)
}

// Nickname maps a local name onto a remote table of a foreign server.
type Nickname struct {
	Name   string
	Server string
	Remote string
	Schema types.Schema
}

// Catalog is the FDBS system catalog. All lookups are case-insensitive.
type Catalog struct {
	mu        sync.RWMutex
	store     *storage.Store
	funcs     map[string]TableFunc
	servers   map[string]ForeignServer
	nicknames map[string]*Nickname
	wrappers  map[string]WrapperFactory
	views     map[string]*sqlparser.Select
	virtuals  map[string]*VirtualTable
}

// VirtualTable is a read-only relation materialized on demand by a
// provider function — the mechanism behind the fed_stat_* introspection
// tables, where the federation queries its own statistics through its own
// SQL path. The provider is called once per scan, under the catalog's
// read path, and must be safe for concurrent use.
type VirtualTable struct {
	Name     string
	Sch      types.Schema
	Provider func() (*types.Table, error)
}

// WrapperFactory creates a ForeignServer from CREATE SERVER options. The
// fdbs layer registers factories under wrapper names before any CREATE
// SERVER statement references them.
type WrapperFactory func(serverName string, options map[string]string) (ForeignServer, error)

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		store:     storage.NewStore(),
		funcs:     make(map[string]TableFunc),
		servers:   make(map[string]ForeignServer),
		nicknames: make(map[string]*Nickname),
		wrappers:  make(map[string]WrapperFactory),
		views:     make(map[string]*sqlparser.Select),
		virtuals:  make(map[string]*VirtualTable),
	}
}

// Store exposes the table store (used by the engine's DML executor).
func (c *Catalog) Store() *storage.Store { return c.store }

// CreateTable creates a base table.
func (c *Catalog) CreateTable(name string, schema types.Schema) (*storage.Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.nicknames[key]; ok {
		return nil, fmt.Errorf("catalog: %s already exists as a nickname", name)
	}
	if _, ok := c.views[key]; ok {
		return nil, fmt.Errorf("catalog: %s already exists as a view", name)
	}
	if _, ok := c.virtuals[key]; ok {
		return nil, fmt.Errorf("catalog: %s already exists as a virtual table", name)
	}
	return c.store.Create(name, schema)
}

// RegisterVirtual installs a virtual table; the name must be free of
// nicknames, views, virtual tables, and base tables.
func (c *Catalog) RegisterVirtual(v *VirtualTable) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(v.Name)
	if _, ok := c.nicknames[key]; ok {
		return fmt.Errorf("catalog: %s already exists as a nickname", v.Name)
	}
	if _, ok := c.views[key]; ok {
		return fmt.Errorf("catalog: %s already exists as a view", v.Name)
	}
	if _, ok := c.virtuals[key]; ok {
		return fmt.Errorf("catalog: virtual table %s already exists", v.Name)
	}
	if _, err := c.store.Get(v.Name); err == nil {
		return fmt.Errorf("catalog: %s already exists as a base table", v.Name)
	}
	c.virtuals[key] = v
	return nil
}

// Virtual returns the named virtual table, or nil when absent.
func (c *Catalog) Virtual(name string) *VirtualTable {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.virtuals[strings.ToLower(name)]
}

// Virtuals lists virtual table names in sorted order.
func (c *Catalog) Virtuals() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.virtuals))
	for _, v := range c.virtuals {
		out = append(out, v.Name)
	}
	sort.Strings(out)
	return out
}

// Table returns the named base table.
func (c *Catalog) Table(name string) (*storage.Table, error) {
	return c.store.Get(name)
}

// DropTable removes a base table.
func (c *Catalog) DropTable(name string) error { return c.store.Drop(name) }

// Tables lists base table names.
func (c *Catalog) Tables() []string { return c.store.List() }

// RegisterFunc installs a table function; the name must be free.
func (c *Catalog) RegisterFunc(f TableFunc) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(f.Name())
	if _, ok := c.funcs[key]; ok {
		return fmt.Errorf("catalog: function %s already exists", f.Name())
	}
	c.funcs[key] = f
	return nil
}

// Func returns the named table function.
func (c *Catalog) Func(name string) (TableFunc, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.funcs[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: no function named %s", name)
	}
	return f, nil
}

// DropFunc unregisters a table function.
func (c *Catalog) DropFunc(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.funcs[key]; !ok {
		return fmt.Errorf("catalog: no function named %s", name)
	}
	delete(c.funcs, key)
	return nil
}

// Funcs lists registered function names in sorted order.
func (c *Catalog) Funcs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.funcs))
	for _, f := range c.funcs {
		out = append(out, f.Name())
	}
	sort.Strings(out)
	return out
}

// RegisterWrapper installs a wrapper factory (CREATE WRAPPER makes it
// visible to CREATE SERVER).
func (c *Catalog) RegisterWrapper(name string, factory WrapperFactory) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.wrappers[key]; ok {
		return fmt.Errorf("catalog: wrapper %s already exists", name)
	}
	c.wrappers[key] = factory
	return nil
}

// Wrapper returns the named wrapper factory.
func (c *Catalog) Wrapper(name string) (WrapperFactory, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	w, ok := c.wrappers[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: no wrapper named %s", name)
	}
	return w, nil
}

// CreateServer attaches a foreign server through the named wrapper.
func (c *Catalog) CreateServer(name, wrapper string, options map[string]string) error {
	factory, err := c.Wrapper(wrapper)
	if err != nil {
		return err
	}
	srv, err := factory(name, options)
	if err != nil {
		return fmt.Errorf("catalog: creating server %s: %w", name, err)
	}
	return c.AddServer(srv)
}

// AddServer registers an already-constructed foreign server.
func (c *Catalog) AddServer(srv ForeignServer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(srv.Name())
	if _, ok := c.servers[key]; ok {
		return fmt.Errorf("catalog: server %s already exists", srv.Name())
	}
	c.servers[key] = srv
	return nil
}

// Server returns the named foreign server.
func (c *Catalog) Server(name string) (ForeignServer, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.servers[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: no server named %s", name)
	}
	return s, nil
}

// Servers lists attached server names in sorted order.
func (c *Catalog) Servers() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.servers))
	for _, s := range c.servers {
		out = append(out, s.Name())
	}
	sort.Strings(out)
	return out
}

// CreateNickname exposes server.remote under a local name.
//
// Deprecated: use CreateNicknameContext; this shim fetches the remote
// schema with a background context.
func (c *Catalog) CreateNickname(name, server, remote string) error {
	return c.CreateNicknameContext(context.Background(), name, server, remote)
}

// CreateNicknameContext exposes server.remote under a local name, fetching
// the remote schema eagerly — under the caller's context — so planning
// needs no remote round trip.
func (c *Catalog) CreateNicknameContext(ctx context.Context, name, server, remote string) error {
	srv, err := c.Server(server)
	if err != nil {
		return err
	}
	schema, err := ServerTableSchema(ctx, srv, remote)
	if err != nil {
		return fmt.Errorf("catalog: nickname %s: %w", name, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.nicknames[key]; ok {
		return fmt.Errorf("catalog: nickname %s already exists", name)
	}
	if _, err := c.store.Get(name); err == nil {
		return fmt.Errorf("catalog: %s already exists as a base table", name)
	}
	c.nicknames[key] = &Nickname{Name: name, Server: server, Remote: remote, Schema: schema.Clone()}
	return nil
}

// Nickname returns the named nickname, or nil when absent.
func (c *Catalog) Nickname(name string) *Nickname {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nicknames[strings.ToLower(name)]
}

// CreateView registers a named query: the paper's homogenized view layer.
// The name must not collide with a base table or nickname.
func (c *Catalog) CreateView(name string, query *sqlparser.Select) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.views[key]; ok {
		return fmt.Errorf("catalog: view %s already exists", name)
	}
	if _, ok := c.nicknames[key]; ok {
		return fmt.Errorf("catalog: %s already exists as a nickname", name)
	}
	if _, err := c.store.Get(name); err == nil {
		return fmt.Errorf("catalog: %s already exists as a base table", name)
	}
	c.views[key] = query
	return nil
}

// View returns the named view's query, or nil when absent.
func (c *Catalog) View(name string) *sqlparser.Select {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.views[strings.ToLower(name)]
}

// DropView removes a view.
func (c *Catalog) DropView(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.views[key]; !ok {
		return fmt.Errorf("catalog: no view named %s", name)
	}
	delete(c.views, key)
	return nil
}

// Views lists view names in sorted order.
func (c *Catalog) Views() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.views))
	for name := range c.views {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SQLFunc is a LANGUAGE SQL table function: the paper's SQL integration
// UDTF. Its body runs through the engine's QueryRunner with the call
// arguments bound as FnName.ParamName references.
type SQLFunc struct {
	FName    string
	FParams  []types.Column
	FReturns types.Schema
	Body     *sqlparser.Select
	// Hooks let the UDTF layer charge simulated costs around the body.
	BeforeInvoke func(task *simlat.Task)
	AfterInvoke  func(task *simlat.Task)
	// BatchBody, when set, is a hand-written set-oriented realization of
	// the function: one call receives all argument rows of a batch and
	// answers one table per row. The per-row SQL body stays the reference
	// semantics; BatchBody is the optimized path a batched plan uses.
	BatchBody func(ctx context.Context, rt QueryRunner, task *simlat.Task, rows [][]types.Value) ([]*types.Table, error)
}

// Name implements TableFunc.
func (f *SQLFunc) Name() string { return f.FName }

// Params implements TableFunc.
func (f *SQLFunc) Params() []types.Column { return f.FParams }

// Schema implements TableFunc.
func (f *SQLFunc) Schema() types.Schema { return f.FReturns }

// Invoke binds the arguments, runs the body, and coerces the result to the
// declared RETURNS TABLE schema.
//
// Deprecated: use InvokeContext; this shim runs the body with a
// background context.
func (f *SQLFunc) Invoke(rt QueryRunner, task *simlat.Task, args []types.Value) (*types.Table, error) {
	return f.InvokeContext(context.Background(), rt, task, args)
}

// InvokeContext implements CtxTableFunc: the body's nested SELECT runs
// under the statement context.
func (f *SQLFunc) InvokeContext(ctx context.Context, rt QueryRunner, task *simlat.Task, args []types.Value) (*types.Table, error) {
	if len(args) != len(f.FParams) {
		return nil, fmt.Errorf("catalog: %s expects %d arguments, got %d", f.FName, len(f.FParams), len(args))
	}
	if rt == nil {
		return nil, fmt.Errorf("catalog: %s needs a query runner", f.FName)
	}
	// Parameters are visible both bare (SupplierNo) and qualified by the
	// function name (BuySuppComp.SupplierNo), matching the paper's DB2
	// examples.
	params := make(map[string]types.Value, 2*len(args))
	for i, p := range f.FParams {
		v, err := types.Cast(args[i], p.Type)
		if err != nil {
			return nil, fmt.Errorf("catalog: %s parameter %s: %w", f.FName, p.Name, err)
		}
		params[strings.ToLower(p.Name)] = v
		params[strings.ToLower(f.FName)+"."+strings.ToLower(p.Name)] = v
	}
	if f.BeforeInvoke != nil {
		f.BeforeInvoke(task)
	}
	res, err := RunSelectOn(ctx, rt, f.Body, params, task)
	if err != nil {
		return nil, fmt.Errorf("catalog: executing %s: %w", f.FName, err)
	}
	out, err := coerceTable(res, f.FReturns)
	if err != nil {
		return nil, fmt.Errorf("catalog: %s result: %w", f.FName, err)
	}
	if f.AfterInvoke != nil {
		f.AfterInvoke(task)
	}
	return out, nil
}

// InvokeBatch implements BatchTableFunc. Without a BatchBody the batch
// degrades to a per-row InvokeContext loop.
func (f *SQLFunc) InvokeBatch(ctx context.Context, rt QueryRunner, task *simlat.Task, rows [][]types.Value) ([]*types.Table, error) {
	if f.BatchBody == nil {
		out := make([]*types.Table, len(rows))
		for i, args := range rows {
			res, err := f.InvokeContext(ctx, rt, task, args)
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}
	cast := make([][]types.Value, len(rows))
	for i, args := range rows {
		if len(args) != len(f.FParams) {
			return nil, fmt.Errorf("catalog: %s expects %d arguments, got %d", f.FName, len(f.FParams), len(args))
		}
		cr := make([]types.Value, len(args))
		for j, p := range f.FParams {
			v, err := types.Cast(args[j], p.Type)
			if err != nil {
				return nil, fmt.Errorf("catalog: %s parameter %s: %w", f.FName, p.Name, err)
			}
			cr[j] = v
		}
		cast[i] = cr
	}
	res, err := f.BatchBody(ctx, rt, task, cast)
	if err != nil {
		return nil, fmt.Errorf("catalog: executing %s: %w", f.FName, err)
	}
	if len(res) != len(rows) {
		return nil, fmt.Errorf("catalog: %s batch body returned %d tables for %d rows", f.FName, len(res), len(rows))
	}
	out := make([]*types.Table, len(res))
	for i, t := range res {
		ct, err := coerceTable(t, f.FReturns)
		if err != nil {
			return nil, fmt.Errorf("catalog: %s result: %w", f.FName, err)
		}
		out[i] = ct
	}
	return out, nil
}

// GoFunc is a host-implemented table function (LANGUAGE EXTERNAL): the
// mechanism behind access UDTFs, Go integration UDTFs, and the workflow
// UDTF.
type GoFunc struct {
	FName    string
	FParams  []types.Column
	FReturns types.Schema
	Fn       func(rt QueryRunner, task *simlat.Task, args []types.Value) (*types.Table, error)
	// FnCtx, when set, takes precedence over Fn and receives the statement
	// context, so deadlines and cancellation flow into the host body.
	FnCtx func(ctx context.Context, rt QueryRunner, task *simlat.Task, args []types.Value) (*types.Table, error)
	// FnBatchCtx, when set, makes the function set-oriented: one call
	// receives all argument rows of a batch and answers one table per row.
	FnBatchCtx func(ctx context.Context, rt QueryRunner, task *simlat.Task, rows [][]types.Value) ([]*types.Table, error)
}

// Name implements TableFunc.
func (f *GoFunc) Name() string { return f.FName }

// Params implements TableFunc.
func (f *GoFunc) Params() []types.Column { return f.FParams }

// Schema implements TableFunc.
func (f *GoFunc) Schema() types.Schema { return f.FReturns }

// Invoke casts the arguments to the declared parameter types, runs the
// host implementation, and coerces its result to the declared schema.
//
// Deprecated: use InvokeContext; this shim runs the implementation with a
// background context.
func (f *GoFunc) Invoke(rt QueryRunner, task *simlat.Task, args []types.Value) (*types.Table, error) {
	return f.InvokeContext(context.Background(), rt, task, args)
}

// InvokeContext implements CtxTableFunc.
func (f *GoFunc) InvokeContext(ctx context.Context, rt QueryRunner, task *simlat.Task, args []types.Value) (*types.Table, error) {
	if len(args) != len(f.FParams) {
		return nil, fmt.Errorf("catalog: %s expects %d arguments, got %d", f.FName, len(f.FParams), len(args))
	}
	cast := make([]types.Value, len(args))
	for i, p := range f.FParams {
		v, err := types.Cast(args[i], p.Type)
		if err != nil {
			return nil, fmt.Errorf("catalog: %s parameter %s: %w", f.FName, p.Name, err)
		}
		cast[i] = v
	}
	var res *types.Table
	var err error
	if f.FnCtx != nil {
		res, err = f.FnCtx(ctx, rt, task, cast)
	} else {
		res, err = f.Fn(rt, task, cast)
	}
	if err != nil {
		return nil, err
	}
	out, err := coerceTable(res, f.FReturns)
	if err != nil {
		return nil, fmt.Errorf("catalog: %s result: %w", f.FName, err)
	}
	return out, nil
}

// InvokeBatch implements BatchTableFunc. When FnBatchCtx is unset the
// batch degrades to a per-row InvokeContext loop, so registering a plain
// GoFunc in a batched plan stays correct — just not amortized.
func (f *GoFunc) InvokeBatch(ctx context.Context, rt QueryRunner, task *simlat.Task, rows [][]types.Value) ([]*types.Table, error) {
	if f.FnBatchCtx == nil {
		out := make([]*types.Table, len(rows))
		for i, args := range rows {
			res, err := f.InvokeContext(ctx, rt, task, args)
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}
	cast := make([][]types.Value, len(rows))
	for i, args := range rows {
		if len(args) != len(f.FParams) {
			return nil, fmt.Errorf("catalog: %s expects %d arguments, got %d", f.FName, len(f.FParams), len(args))
		}
		cr := make([]types.Value, len(args))
		for j, p := range f.FParams {
			v, err := types.Cast(args[j], p.Type)
			if err != nil {
				return nil, fmt.Errorf("catalog: %s parameter %s: %w", f.FName, p.Name, err)
			}
			cr[j] = v
		}
		cast[i] = cr
	}
	res, err := f.FnBatchCtx(ctx, rt, task, cast)
	if err != nil {
		return nil, err
	}
	if len(res) != len(rows) {
		return nil, fmt.Errorf("catalog: %s batch body returned %d tables for %d rows", f.FName, len(res), len(rows))
	}
	out := make([]*types.Table, len(res))
	for i, t := range res {
		ct, err := coerceTable(t, f.FReturns)
		if err != nil {
			return nil, fmt.Errorf("catalog: %s result: %w", f.FName, err)
		}
		out[i] = ct
	}
	return out, nil
}

// coerceTable casts every row of t to the target schema (arity must
// match); column names are taken from the target.
func coerceTable(t *types.Table, target types.Schema) (*types.Table, error) {
	if len(t.Schema) != len(target) {
		return nil, fmt.Errorf("catalog: result has %d columns, declared %d", len(t.Schema), len(target))
	}
	out := types.NewTable(target.Clone())
	for _, r := range t.Rows {
		cr, err := types.CoerceRow(r, target)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, cr)
	}
	return out, nil
}
