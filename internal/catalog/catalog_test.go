package catalog

import (
	"errors"
	"fmt"
	"testing"

	"fedwf/internal/simlat"
	"fedwf/internal/sqlparser"
	"fedwf/internal/types"
)

func TestTableLifecycle(t *testing.T) {
	cat := New()
	schema := types.Schema{{Name: "A", Type: types.Integer}}
	if _, err := cat.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateTable("T", schema); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := cat.Table("t"); err != nil {
		t.Errorf("Table: %v", err)
	}
	if got := cat.Tables(); len(got) != 1 || got[0] != "t" {
		t.Errorf("Tables = %v", got)
	}
	if err := cat.DropTable("t"); err != nil {
		t.Errorf("DropTable: %v", err)
	}
	if _, err := cat.Table("t"); err == nil {
		t.Error("dropped table still resolvable")
	}
}

func TestFuncRegistry(t *testing.T) {
	cat := New()
	fn := &GoFunc{
		FName:    "F",
		FReturns: types.Schema{{Name: "X", Type: types.Integer}},
		Fn: func(rt QueryRunner, task *simlat.Task, args []types.Value) (*types.Table, error) {
			out := types.NewTable(types.Schema{{Name: "X", Type: types.Integer}})
			out.MustAppend(types.Row{types.NewInt(1)})
			return out, nil
		},
	}
	if err := cat.RegisterFunc(fn); err != nil {
		t.Fatal(err)
	}
	if err := cat.RegisterFunc(fn); err == nil {
		t.Error("duplicate function accepted")
	}
	got, err := cat.Func("f")
	if err != nil || got.Name() != "F" {
		t.Errorf("Func = %v, %v", got, err)
	}
	if names := cat.Funcs(); len(names) != 1 || names[0] != "F" {
		t.Errorf("Funcs = %v", names)
	}
	if err := cat.DropFunc("F"); err != nil {
		t.Errorf("DropFunc: %v", err)
	}
	if err := cat.DropFunc("F"); err == nil {
		t.Error("double drop accepted")
	}
	if _, err := cat.Func("F"); err == nil {
		t.Error("dropped function resolvable")
	}
}

type stubServer struct {
	name   string
	schema types.Schema
	err    error
}

func (s *stubServer) Name() string { return s.name }
func (s *stubServer) TableSchema(remote string) (types.Schema, error) {
	if s.err != nil {
		return nil, s.err
	}
	return s.schema, nil
}
func (s *stubServer) Query(sel *sqlparser.Select, task *simlat.Task) (*types.Table, error) {
	return types.NewTable(s.schema), nil
}

func TestServersAndNicknames(t *testing.T) {
	cat := New()
	srv := &stubServer{name: "S1", schema: types.Schema{{Name: "A", Type: types.Integer}}}
	if err := cat.AddServer(srv); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddServer(srv); err == nil {
		t.Error("duplicate server accepted")
	}
	if got, err := cat.Server("s1"); err != nil || got.Name() != "S1" {
		t.Errorf("Server = %v, %v", got, err)
	}
	if _, err := cat.Server("nope"); err == nil {
		t.Error("unknown server resolvable")
	}
	if names := cat.Servers(); len(names) != 1 {
		t.Errorf("Servers = %v", names)
	}

	if err := cat.CreateNickname("nick", "S1", "remote_t"); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateNickname("nick", "S1", "remote_t"); err == nil {
		t.Error("duplicate nickname accepted")
	}
	n := cat.Nickname("NICK")
	if n == nil || n.Server != "S1" || n.Remote != "remote_t" || len(n.Schema) != 1 {
		t.Errorf("Nickname = %+v", n)
	}
	if cat.Nickname("none") != nil {
		t.Error("unknown nickname resolvable")
	}
	// Nickname may not shadow a base table, and vice versa.
	if _, err := cat.CreateTable("nick", types.Schema{{Name: "A", Type: types.Integer}}); err == nil {
		t.Error("table shadowing nickname accepted")
	}
	if _, err := cat.CreateTable("base", types.Schema{{Name: "A", Type: types.Integer}}); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateNickname("base", "S1", "remote_t"); err == nil {
		t.Error("nickname shadowing table accepted")
	}
	// Remote schema failure propagates.
	bad := &stubServer{name: "S2", err: errors.New("unreachable")}
	if err := cat.AddServer(bad); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateNickname("n2", "S2", "x"); err == nil {
		t.Error("remote schema failure swallowed")
	}
	if err := cat.CreateNickname("n3", "nosrv", "x"); err == nil {
		t.Error("nickname on unknown server accepted")
	}
}

func TestWrapperRegistry(t *testing.T) {
	cat := New()
	factory := func(serverName string, options map[string]string) (ForeignServer, error) {
		if options["fail"] == "yes" {
			return nil, errors.New("factory failure")
		}
		return &stubServer{name: serverName, schema: types.Schema{{Name: "A", Type: types.Integer}}}, nil
	}
	if err := cat.RegisterWrapper("w", factory); err != nil {
		t.Fatal(err)
	}
	if err := cat.RegisterWrapper("W", factory); err == nil {
		t.Error("duplicate wrapper accepted")
	}
	if _, err := cat.Wrapper("w"); err != nil {
		t.Errorf("Wrapper: %v", err)
	}
	if _, err := cat.Wrapper("none"); err == nil {
		t.Error("unknown wrapper resolvable")
	}
	if err := cat.CreateServer("srv", "w", nil); err != nil {
		t.Errorf("CreateServer: %v", err)
	}
	if err := cat.CreateServer("srv2", "w", map[string]string{"fail": "yes"}); err == nil {
		t.Error("factory failure swallowed")
	}
	if err := cat.CreateServer("srv3", "none", nil); err == nil {
		t.Error("unknown wrapper in CREATE SERVER accepted")
	}
}

// stubRunner executes SQLFunc bodies against fixed data.
type stubRunner struct {
	got    map[string]types.Value
	result *types.Table
	err    error
}

func (r *stubRunner) RunSelect(sel *sqlparser.Select, params map[string]types.Value, task *simlat.Task) (*types.Table, error) {
	r.got = params
	if r.err != nil {
		return nil, r.err
	}
	return r.result, nil
}

func TestSQLFuncInvoke(t *testing.T) {
	body, err := sqlparser.ParseSelect("SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	result := types.NewTable(types.Schema{{Name: "raw", Type: types.Integer}})
	result.MustAppend(types.Row{types.NewInt(7)})
	runner := &stubRunner{result: result}

	var beforeRan, afterRan bool
	fn := &SQLFunc{
		FName:        "GetX",
		FParams:      []types.Column{{Name: "P", Type: types.Integer}},
		FReturns:     types.Schema{{Name: "X", Type: types.BigInt}},
		Body:         body,
		BeforeInvoke: func(task *simlat.Task) { beforeRan = true },
		AfterInvoke:  func(task *simlat.Task) { afterRan = true },
	}
	out, err := fn.Invoke(runner, simlat.Free(), []types.Value{types.NewString("5")})
	if err != nil {
		t.Fatal(err)
	}
	if !beforeRan || !afterRan {
		t.Error("hooks not invoked")
	}
	// Parameters bound bare and qualified, cast to declared type.
	if v := runner.got["p"]; v.Int() != 5 {
		t.Errorf("bare param = %v", v)
	}
	if v := runner.got["getx.p"]; v.Int() != 5 {
		t.Errorf("qualified param = %v", v)
	}
	// Result coerced to the declared schema.
	if out.Schema[0].Name != "X" || out.Rows[0][0].Int() != 7 {
		t.Errorf("result:\n%s", out)
	}

	if _, err := fn.Invoke(runner, simlat.Free(), nil); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := fn.Invoke(nil, simlat.Free(), []types.Value{types.NewInt(1)}); err == nil {
		t.Error("nil runner accepted")
	}
	if _, err := fn.Invoke(runner, simlat.Free(), []types.Value{types.NewString("xx")}); err == nil {
		t.Error("uncastable argument accepted")
	}
	runner.err = errors.New("body failure")
	if _, err := fn.Invoke(runner, simlat.Free(), []types.Value{types.NewInt(1)}); err == nil {
		t.Error("body failure swallowed")
	}
	// Arity mismatch between body result and declared schema.
	runner.err = nil
	wide := types.NewTable(types.Schema{
		{Name: "a", Type: types.Integer}, {Name: "b", Type: types.Integer},
	})
	runner.result = wide
	if _, err := fn.Invoke(runner, simlat.Free(), []types.Value{types.NewInt(1)}); err == nil {
		t.Error("column-count mismatch accepted")
	}
}

func TestGoFuncInvoke(t *testing.T) {
	fn := &GoFunc{
		FName:    "Mk",
		FParams:  []types.Column{{Name: "N", Type: types.Integer}},
		FReturns: types.Schema{{Name: "V", Type: types.VarCharN(3)}},
		Fn: func(rt QueryRunner, task *simlat.Task, args []types.Value) (*types.Table, error) {
			out := types.NewTable(types.Schema{{Name: "raw", Type: types.VarChar}})
			out.MustAppend(types.Row{types.NewString(fmt.Sprintf("%05d", args[0].Int()))})
			return out, nil
		},
	}
	out, err := fn.Invoke(nil, simlat.Free(), []types.Value{types.NewString("42")})
	if err != nil {
		t.Fatal(err)
	}
	// VARCHAR(3) truncation applied by the declared schema.
	if out.Rows[0][0].Str() != "000" {
		t.Errorf("coerced result = %v", out.Rows[0][0])
	}
	if _, err := fn.Invoke(nil, simlat.Free(), nil); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := fn.Invoke(nil, simlat.Free(), []types.Value{types.NewString("x")}); err == nil {
		t.Error("uncastable argument accepted")
	}
	if fn.Name() != "Mk" || len(fn.Params()) != 1 || len(fn.Schema()) != 1 {
		t.Error("accessors")
	}
}

func TestViews(t *testing.T) {
	cat := New()
	q, err := sqlparser.ParseSelect("SELECT 1 AS one")
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateView("v", q); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateView("V", q); err == nil {
		t.Error("duplicate view accepted")
	}
	if cat.View("v") != q {
		t.Error("View lookup failed")
	}
	if cat.View("none") != nil {
		t.Error("unknown view resolvable")
	}
	if got := cat.Views(); len(got) != 1 || got[0] != "v" {
		t.Errorf("Views = %v", got)
	}
	// Collisions with tables and nicknames in both directions.
	if _, err := cat.CreateTable("v", types.Schema{{Name: "A", Type: types.Integer}}); err == nil {
		t.Error("table shadowing view accepted")
	}
	if _, err := cat.CreateTable("t", types.Schema{{Name: "A", Type: types.Integer}}); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateView("t", q); err == nil {
		t.Error("view shadowing table accepted")
	}
	if err := cat.AddServer(&stubServer{name: "S9", schema: types.Schema{{Name: "A", Type: types.Integer}}}); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateNickname("nick9", "S9", "r"); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateView("nick9", q); err == nil {
		t.Error("view shadowing nickname accepted")
	}
	if err := cat.DropView("v"); err != nil {
		t.Errorf("DropView: %v", err)
	}
	if err := cat.DropView("v"); err == nil {
		t.Error("double drop accepted")
	}
}
