// Package types implements the SQL value and type system shared by every
// layer of the integration server: the storage engine, the SQL query
// processor, the UDTF framework, the workflow containers, and the
// application-system function signatures.
//
// The design follows the subset of SQL:1999 exercised by the paper's
// prototype (DB2 UDB v7.1): exact numerics (SMALLINT, INTEGER, BIGINT),
// approximate numerics (DOUBLE), character strings (VARCHAR), BOOLEAN, and
// the NULL value. Values are immutable.
package types

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// BaseType enumerates the SQL base types supported by the engine.
type BaseType uint8

// Supported SQL base types.
const (
	UnknownType BaseType = iota
	BooleanType
	SmallIntType
	IntegerType
	BigIntType
	DoubleType
	VarCharType
)

// String returns the SQL spelling of the base type.
func (b BaseType) String() string {
	switch b {
	case BooleanType:
		return "BOOLEAN"
	case SmallIntType:
		return "SMALLINT"
	case IntegerType:
		return "INTEGER"
	case BigIntType:
		return "BIGINT"
	case DoubleType:
		return "DOUBLE"
	case VarCharType:
		return "VARCHAR"
	default:
		return "UNKNOWN"
	}
}

// IsNumeric reports whether the base type is an exact or approximate numeric.
func (b BaseType) IsNumeric() bool {
	switch b {
	case SmallIntType, IntegerType, BigIntType, DoubleType:
		return true
	}
	return false
}

// IsInteger reports whether the base type is an exact integer numeric.
func (b BaseType) IsInteger() bool {
	switch b {
	case SmallIntType, IntegerType, BigIntType:
		return true
	}
	return false
}

// Type describes a SQL column or parameter type.
type Type struct {
	Base   BaseType
	Length int // declared length for VARCHAR(n); 0 means unbounded
}

// Convenience constructors for the common types.
var (
	Boolean  = Type{Base: BooleanType}
	SmallInt = Type{Base: SmallIntType}
	Integer  = Type{Base: IntegerType}
	BigInt   = Type{Base: BigIntType}
	Double   = Type{Base: DoubleType}
	VarChar  = Type{Base: VarCharType}
)

// VarCharN returns a VARCHAR type with a declared maximum length.
func VarCharN(n int) Type { return Type{Base: VarCharType, Length: n} }

// String returns the SQL spelling of the type, e.g. "VARCHAR(30)".
func (t Type) String() string {
	if t.Base == VarCharType && t.Length > 0 {
		return fmt.Sprintf("VARCHAR(%d)", t.Length)
	}
	return t.Base.String()
}

// ParseType parses a SQL type name such as "INT", "VARCHAR(20)" or
// "DOUBLE PRECISION" into a Type.
func ParseType(s string) (Type, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	var length int
	if i := strings.IndexByte(u, '('); i >= 0 {
		j := strings.IndexByte(u, ')')
		if j < i {
			return Type{}, fmt.Errorf("types: malformed type %q", s)
		}
		n, err := strconv.Atoi(strings.TrimSpace(u[i+1 : j]))
		if err != nil {
			return Type{}, fmt.Errorf("types: malformed length in %q", s)
		}
		length = n
		u = strings.TrimSpace(u[:i])
	}
	switch u {
	case "BOOLEAN", "BOOL":
		return Boolean, nil
	case "SMALLINT":
		return SmallInt, nil
	case "INT", "INTEGER":
		return Integer, nil
	case "BIGINT", "LONG":
		return BigInt, nil
	case "DOUBLE", "DOUBLE PRECISION", "FLOAT", "REAL":
		return Double, nil
	case "VARCHAR", "CHAR", "CHARACTER VARYING", "CHARACTER":
		return Type{Base: VarCharType, Length: length}, nil
	default:
		return Type{}, fmt.Errorf("types: unknown type %q", s)
	}
}

// Kind enumerates the physical representations of a Value.
type Kind uint8

// Physical value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	default:
		return "INVALID"
	}
}

// Value is an immutable SQL value. The zero Value is SQL NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a double-precision value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a character-string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind returns the physical representation of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload; valid only when Kind()==KindInt.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload; valid only when Kind()==KindFloat.
func (v Value) Float() float64 { return v.f }

// Str returns the string payload; valid only when Kind()==KindString.
func (v Value) Str() string { return v.s }

// Bool returns the boolean payload; valid only when Kind()==KindBool.
func (v Value) Bool() bool { return v.b }

// AsInt coerces v to int64 where SQL permits (integers, floats with
// truncation, numeric strings, booleans as 0/1).
func (v Value) AsInt() (int64, error) {
	switch v.kind {
	case KindInt:
		return v.i, nil
	case KindFloat:
		if math.IsNaN(v.f) || v.f > math.MaxInt64 || v.f < math.MinInt64 {
			return 0, fmt.Errorf("types: %v out of integer range", v.f)
		}
		return int64(v.f), nil
	case KindString:
		n, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("types: cannot convert %q to integer", v.s)
		}
		return n, nil
	case KindBool:
		if v.b {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("types: cannot convert NULL to integer")
	}
}

// AsFloat coerces v to float64 where SQL permits.
func (v Value) AsFloat() (float64, error) {
	switch v.kind {
	case KindFloat:
		return v.f, nil
	case KindInt:
		return float64(v.i), nil
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		if err != nil {
			return 0, fmt.Errorf("types: cannot convert %q to double", v.s)
		}
		return f, nil
	case KindBool:
		if v.b {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("types: cannot convert NULL to double")
	}
}

// AsString coerces v to its character representation.
func (v Value) AsString() (string, error) {
	if v.kind == KindNull {
		return "", fmt.Errorf("types: cannot convert NULL to string")
	}
	return v.Format(), nil
}

// AsBool coerces v to a boolean (non-zero numerics are true; the strings
// TRUE/FALSE, T/F, 1/0 are accepted case-insensitively).
func (v Value) AsBool() (bool, error) {
	switch v.kind {
	case KindBool:
		return v.b, nil
	case KindInt:
		return v.i != 0, nil
	case KindFloat:
		return v.f != 0, nil
	case KindString:
		switch strings.ToUpper(strings.TrimSpace(v.s)) {
		case "TRUE", "T", "1", "YES", "Y":
			return true, nil
		case "FALSE", "F", "0", "NO", "N":
			return false, nil
		}
		return false, fmt.Errorf("types: cannot convert %q to boolean", v.s)
	default:
		return false, fmt.Errorf("types: cannot convert NULL to boolean")
	}
}

// Format renders v the way the interactive client prints result cells.
func (v Value) Format() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return "?"
	}
}

// String renders v as a SQL literal (strings quoted), for plan and AST dumps.
func (v Value) String() string {
	if v.kind == KindString {
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return v.Format()
}

// Equal reports whether two values are identical (NULL equals NULL here;
// use Compare for SQL ternary semantics).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		// Numeric values of different kinds may still be equal (1 == 1.0).
		if isNumericKind(v.kind) && isNumericKind(o.kind) {
			c, err := Compare(v, o)
			return err == nil && c == 0
		}
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindBool:
		return v.b == o.b
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	case KindString:
		return v.s == o.s
	}
	return false
}

func isNumericKind(k Kind) bool { return k == KindInt || k == KindFloat }

// Hash returns a hash of v suitable for hash joins and grouping. Values that
// compare equal hash equally (integers hash via their float64 image only
// when they are not exactly representable both ways; we normalise integers
// and integral floats to the same image).
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	switch v.kind {
	case KindNull:
		h.Write([]byte{0})
	case KindBool:
		if v.b {
			h.Write([]byte{1, 1})
		} else {
			h.Write([]byte{1, 0})
		}
	case KindInt:
		writeHashNumeric(h, float64(v.i), v.i, true)
	case KindFloat:
		if v.f == math.Trunc(v.f) && v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
			writeHashNumeric(h, v.f, int64(v.f), true)
		} else {
			writeHashNumeric(h, v.f, 0, false)
		}
	case KindString:
		h.Write([]byte{3})
		h.Write([]byte(v.s))
	}
	return h.Sum64()
}

func writeHashNumeric(h interface{ Write([]byte) (int, error) }, f float64, i int64, integral bool) {
	var buf [10]byte
	buf[0] = 2
	if integral {
		buf[1] = 1
		u := uint64(i)
		for k := 0; k < 8; k++ {
			buf[2+k] = byte(u >> (8 * k))
		}
	} else {
		buf[1] = 0
		u := math.Float64bits(f)
		for k := 0; k < 8; k++ {
			buf[2+k] = byte(u >> (8 * k))
		}
	}
	h.Write(buf[:])
}

// ErrNullCompare is returned by Compare when either operand is NULL; SQL
// comparisons with NULL yield UNKNOWN, which callers map to "no match".
var ErrNullCompare = fmt.Errorf("types: comparison with NULL is UNKNOWN")

// Compare orders two values: -1, 0, +1. Numeric kinds compare numerically
// across representations. Comparing NULL with anything returns
// ErrNullCompare; comparing incompatible kinds returns an error.
func Compare(a, b Value) (int, error) {
	if a.kind == KindNull || b.kind == KindNull {
		return 0, ErrNullCompare
	}
	if isNumericKind(a.kind) && isNumericKind(b.kind) {
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1, nil
			case a.i > b.i:
				return 1, nil
			default:
				return 0, nil
			}
		}
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.kind != b.kind {
		return 0, fmt.Errorf("types: cannot compare %s with %s", a.kind, b.kind)
	}
	switch a.kind {
	case KindString:
		return strings.Compare(a.s, b.s), nil
	case KindBool:
		switch {
		case a.b == b.b:
			return 0, nil
		case !a.b:
			return -1, nil
		default:
			return 1, nil
		}
	}
	return 0, fmt.Errorf("types: cannot compare %s values", a.kind)
}

// Cast converts v to target type t, applying SQL conversion rules:
// numeric widening/narrowing with range checks, string parsing/formatting,
// and VARCHAR(n) truncation to the declared length. NULL casts to NULL.
func Cast(v Value, t Type) (Value, error) {
	if v.kind == KindNull {
		return Null, nil
	}
	switch t.Base {
	case BooleanType:
		b, err := v.AsBool()
		if err != nil {
			return Null, err
		}
		return NewBool(b), nil
	case SmallIntType:
		n, err := v.AsInt()
		if err != nil {
			return Null, err
		}
		if n < math.MinInt16 || n > math.MaxInt16 {
			return Null, fmt.Errorf("types: %d out of SMALLINT range", n)
		}
		return NewInt(n), nil
	case IntegerType:
		n, err := v.AsInt()
		if err != nil {
			return Null, err
		}
		if n < math.MinInt32 || n > math.MaxInt32 {
			return Null, fmt.Errorf("types: %d out of INTEGER range", n)
		}
		return NewInt(n), nil
	case BigIntType:
		n, err := v.AsInt()
		if err != nil {
			return Null, err
		}
		return NewInt(n), nil
	case DoubleType:
		f, err := v.AsFloat()
		if err != nil {
			return Null, err
		}
		return NewFloat(f), nil
	case VarCharType:
		s, err := v.AsString()
		if err != nil {
			return Null, err
		}
		if t.Length > 0 && len(s) > t.Length {
			s = s[:t.Length]
		}
		return NewString(s), nil
	default:
		return Null, fmt.Errorf("types: cannot cast to %s", t)
	}
}

// TypeOf returns the natural SQL type of a value's physical representation.
func TypeOf(v Value) Type {
	switch v.kind {
	case KindBool:
		return Boolean
	case KindInt:
		return BigInt
	case KindFloat:
		return Double
	case KindString:
		return VarChar
	default:
		return Type{}
	}
}

// Conforms reports whether value v may be stored in a column of type t
// without an explicit cast (NULL conforms to every type).
func Conforms(v Value, t Type) bool {
	if v.kind == KindNull {
		return true
	}
	switch t.Base {
	case BooleanType:
		return v.kind == KindBool
	case SmallIntType, IntegerType, BigIntType:
		return v.kind == KindInt
	case DoubleType:
		return v.kind == KindFloat || v.kind == KindInt
	case VarCharType:
		return v.kind == KindString
	}
	return false
}
