package types

import (
	"strings"
	"testing"
)

func suppSchema() Schema {
	return Schema{
		{Name: "SupplierNo", Type: Integer},
		{Name: "Name", Type: VarCharN(30)},
		{Name: "Reliability", Type: Double},
	}
}

func TestSchemaColumnIndex(t *testing.T) {
	s := suppSchema()
	if i := s.ColumnIndex("name"); i != 1 {
		t.Errorf("ColumnIndex(name) = %d", i)
	}
	if i := s.ColumnIndex("NAME"); i != 1 {
		t.Errorf("ColumnIndex(NAME) = %d", i)
	}
	if i := s.ColumnIndex("absent"); i != -1 {
		t.Errorf("ColumnIndex(absent) = %d", i)
	}
}

func TestSchemaStringAndNames(t *testing.T) {
	s := suppSchema()
	want := "(SupplierNo INTEGER, Name VARCHAR(30), Reliability DOUBLE)"
	if got := s.String(); got != want {
		t.Errorf("Schema.String() = %q, want %q", got, want)
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "SupplierNo" {
		t.Errorf("Names() = %v", names)
	}
}

func TestSchemaClone(t *testing.T) {
	s := suppSchema()
	c := s.Clone()
	c[0].Name = "Changed"
	if s[0].Name != "SupplierNo" {
		t.Error("Clone must not alias")
	}
}

func TestRowValidateAndCoerce(t *testing.T) {
	s := suppSchema()
	good := Row{NewInt(1), NewString("ACME"), NewFloat(0.9)}
	if err := good.Validate(s); err != nil {
		t.Errorf("Validate(good): %v", err)
	}
	short := Row{NewInt(1)}
	if err := short.Validate(s); err == nil {
		t.Error("Validate(short row) should fail")
	}
	bad := Row{NewString("x"), NewString("ACME"), NewFloat(0.9)}
	if err := bad.Validate(s); err == nil {
		t.Error("Validate(bad type) should fail")
	}
	co, err := CoerceRow(Row{NewString("7"), NewInt(3), NewInt(1)}, s)
	if err != nil {
		t.Fatalf("CoerceRow: %v", err)
	}
	if co[0].Int() != 7 || co[1].Str() != "3" || co[2].Float() != 1 {
		t.Errorf("CoerceRow = %v", co)
	}
	if _, err := CoerceRow(Row{NewString("x"), NewInt(3), NewInt(1)}, s); err == nil {
		t.Error("CoerceRow with unparsable int should fail")
	}
	if _, err := CoerceRow(Row{NewInt(1)}, s); err == nil {
		t.Error("CoerceRow with arity mismatch should fail")
	}
}

func TestRowCloneEqualString(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].Int() != 1 {
		t.Error("Clone must not alias")
	}
	if !r.Equal(Row{NewInt(1), NewString("a")}) {
		t.Error("Equal rows not equal")
	}
	if r.Equal(Row{NewInt(1)}) {
		t.Error("rows of different arity must differ")
	}
	if r.Equal(Row{NewInt(1), NewString("b")}) {
		t.Error("different rows must differ")
	}
	if got := r.String(); got != "[1, 'a']" {
		t.Errorf("Row.String() = %q", got)
	}
}

func TestTableAppendAndString(t *testing.T) {
	tab := NewTable(Schema{{Name: "No", Type: Integer}, {Name: "Name", Type: VarChar}})
	if err := tab.Append(Row{NewInt(1), NewString("bolt")}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	tab.MustAppend(Row{NewInt(2), NewString("nut")})
	if tab.Len() != 2 {
		t.Errorf("Len = %d", tab.Len())
	}
	if err := tab.Append(Row{NewString("x"), NewString("y")}); err == nil {
		t.Error("Append with wrong type should fail")
	}
	out := tab.String()
	for _, want := range []string{"No", "Name", "bolt", "nut", "--"} {
		if !strings.Contains(out, want) {
			t.Errorf("table rendering missing %q:\n%s", want, out)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAppend should panic on bad row")
		}
	}()
	tab.MustAppend(Row{NewString("x")})
}
