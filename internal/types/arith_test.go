package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntArith(t *testing.T) {
	cases := []struct {
		op   func(a, b Value) (Value, error)
		a, b int64
		want int64
	}{
		{Add, 2, 3, 5},
		{Sub, 2, 3, -1},
		{Mul, -4, 3, -12},
		{Div, 7, 2, 3},
		{Mod, 7, 2, 1},
		{Div, -7, 2, -3},
	}
	for i, c := range cases {
		got, err := c.op(NewInt(c.a), NewInt(c.b))
		if err != nil || got.Int() != c.want {
			t.Errorf("case %d: got %v, %v; want %d", i, got, err, c.want)
		}
	}
}

func TestFloatPromotion(t *testing.T) {
	v, err := Add(NewInt(1), NewFloat(0.5))
	if err != nil || v.Kind() != KindFloat || v.Float() != 1.5 {
		t.Errorf("Add(1, 0.5) = %v, %v", v, err)
	}
	v, err = Div(NewFloat(1), NewFloat(4))
	if err != nil || v.Float() != 0.25 {
		t.Errorf("Div(1.0, 4.0) = %v, %v", v, err)
	}
	v, err = Mod(NewFloat(5.5), NewFloat(2))
	if err != nil || v.Float() != 1.5 {
		t.Errorf("Mod(5.5, 2.0) = %v, %v", v, err)
	}
}

func TestArithNullPropagation(t *testing.T) {
	for _, op := range []func(a, b Value) (Value, error){Add, Sub, Mul, Div, Mod, Concat} {
		v, err := op(Null, NewInt(1))
		if err != nil || !v.IsNull() {
			t.Errorf("op(NULL, 1) = %v, %v", v, err)
		}
		v, err = op(NewInt(1), Null)
		if err != nil || !v.IsNull() {
			t.Errorf("op(1, NULL) = %v, %v", v, err)
		}
	}
	if v, err := Neg(Null); err != nil || !v.IsNull() {
		t.Errorf("Neg(NULL) = %v, %v", v, err)
	}
}

func TestArithErrors(t *testing.T) {
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("integer division by zero should fail")
	}
	if _, err := Div(NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float division by zero should fail")
	}
	if _, err := Mod(NewInt(1), NewInt(0)); err == nil {
		t.Error("mod by zero should fail")
	}
	if _, err := Mod(NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float mod by zero should fail")
	}
	if _, err := Add(NewString("a"), NewInt(1)); err == nil {
		t.Error("string + int should fail")
	}
	if _, err := Neg(NewString("a")); err == nil {
		t.Error("negating a string should fail")
	}
	if _, err := Add(NewInt(math.MaxInt64), NewInt(1)); err == nil {
		t.Error("overflow in Add undetected")
	}
	if _, err := Sub(NewInt(math.MinInt64), NewInt(1)); err == nil {
		t.Error("overflow in Sub undetected")
	}
	if _, err := Mul(NewInt(math.MaxInt64), NewInt(2)); err == nil {
		t.Error("overflow in Mul undetected")
	}
	if _, err := Mul(NewInt(math.MinInt64), NewInt(-1)); err == nil {
		t.Error("overflow in Mul(-min, -1) undetected")
	}
	if _, err := Div(NewInt(math.MinInt64), NewInt(-1)); err == nil {
		t.Error("overflow in Div undetected")
	}
	if _, err := Neg(NewInt(math.MinInt64)); err == nil {
		t.Error("overflow in Neg undetected")
	}
	if v, err := Mod(NewInt(math.MinInt64), NewInt(-1)); err != nil || v.Int() != 0 {
		t.Errorf("Mod(min, -1) = %v, %v; want 0", v, err)
	}
}

func TestNeg(t *testing.T) {
	if v, err := Neg(NewInt(5)); err != nil || v.Int() != -5 {
		t.Errorf("Neg(5) = %v, %v", v, err)
	}
	if v, err := Neg(NewFloat(2.5)); err != nil || v.Float() != -2.5 {
		t.Errorf("Neg(2.5) = %v, %v", v, err)
	}
}

func TestConcat(t *testing.T) {
	v, err := Concat(NewString("a"), NewString("b"))
	if err != nil || v.Str() != "ab" {
		t.Errorf("Concat = %v, %v", v, err)
	}
	v, err = Concat(NewString("n="), NewInt(3))
	if err != nil || v.Str() != "n=3" {
		t.Errorf("Concat mixed = %v, %v", v, err)
	}
}

// Property: integer Add/Sub are inverse operations when no overflow occurs.
func TestAddSubInverseProperty(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := NewInt(int64(a)), NewInt(int64(b))
		s, err := Add(x, y)
		if err != nil {
			return false
		}
		d, err := Sub(s, y)
		if err != nil {
			return false
		}
		return d.Int() == int64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: (a / b) * b + (a % b) == a for non-zero b (Euclidean identity
// for Go-style truncated division).
func TestDivModIdentityProperty(t *testing.T) {
	f := func(a, b int32) bool {
		if b == 0 {
			return true
		}
		x, y := NewInt(int64(a)), NewInt(int64(b))
		q, err := Div(x, y)
		if err != nil {
			return false
		}
		r, err := Mod(x, y)
		if err != nil {
			return false
		}
		p, err := Mul(q, y)
		if err != nil {
			return false
		}
		s, err := Add(p, r)
		if err != nil {
			return false
		}
		return s.Int() == int64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
