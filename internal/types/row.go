package types

import (
	"fmt"
	"strings"
)

// Column describes one column of a relation, UDTF result table, or
// workflow container.
type Column struct {
	Name string
	Type Type
}

// String renders the column as "name TYPE".
func (c Column) String() string { return c.Name + " " + c.Type.String() }

// Schema is an ordered list of columns.
type Schema []Column

// ColumnIndex returns the position of the named column (case-insensitive),
// or -1 when absent.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as a parenthesised column list.
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Clone returns a deep copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Row is one tuple of values, positionally aligned with a Schema.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports value-wise equality of two rows.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// String renders the row as a bracketed value list.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Validate checks that the row conforms positionally to the schema.
func (r Row) Validate(s Schema) error {
	if len(r) != len(s) {
		return fmt.Errorf("types: row has %d values, schema has %d columns", len(r), len(s))
	}
	for i, v := range r {
		if !Conforms(v, s[i].Type) {
			return fmt.Errorf("types: value %s does not conform to column %s", v, s[i])
		}
	}
	return nil
}

// CoerceRow casts every value of r to the corresponding column type of s.
func CoerceRow(r Row, s Schema) (Row, error) {
	if len(r) != len(s) {
		return nil, fmt.Errorf("types: row has %d values, schema has %d columns", len(r), len(s))
	}
	out := make(Row, len(r))
	for i, v := range r {
		cv, err := Cast(v, s[i].Type)
		if err != nil {
			return nil, fmt.Errorf("types: column %s: %w", s[i].Name, err)
		}
		out[i] = cv
	}
	return out, nil
}

// Table is a fully materialised result: a schema plus rows. It is the unit
// returned by UDTFs, by the wrapper interface, and by the embedded query
// API.
type Table struct {
	Schema Schema
	Rows   []Row
}

// NewTable creates an empty table with the given schema.
func NewTable(s Schema) *Table { return &Table{Schema: s} }

// Append adds a row after validating it against the table schema.
func (t *Table) Append(r Row) error {
	if err := r.Validate(t.Schema); err != nil {
		return err
	}
	t.Rows = append(t.Rows, r)
	return nil
}

// MustAppend adds a row and panics on schema violation; for tests and
// built-in data sets whose shape is statically known.
func (t *Table) MustAppend(r Row) {
	if err := t.Append(r); err != nil {
		panic(err)
	}
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// String renders the table in a fixed-width text grid, the format used by
// the interactive client and the experiment reports.
func (t *Table) String() string {
	widths := make([]int, len(t.Schema))
	for i, c := range t.Schema {
		widths[i] = len(c.Name)
	}
	cells := make([][]string, len(t.Rows))
	for ri, r := range t.Rows {
		cells[ri] = make([]string, len(r))
		for ci, v := range r {
			s := v.Format()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range t.Schema {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c.Name)
	}
	b.WriteByte('\n')
	for i := range t.Schema {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, r := range cells {
		for i, s := range r {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
