package types

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseType(t *testing.T) {
	cases := []struct {
		in   string
		want Type
		err  bool
	}{
		{"INT", Integer, false},
		{"integer", Integer, false},
		{"BIGINT", BigInt, false},
		{"LONG", BigInt, false},
		{"SMALLINT", SmallInt, false},
		{"DOUBLE", Double, false},
		{"DOUBLE PRECISION", Double, false},
		{"VARCHAR", VarChar, false},
		{"VARCHAR(30)", VarCharN(30), false},
		{"varchar( 7 )", VarCharN(7), false},
		{"BOOLEAN", Boolean, false},
		{"FROB", Type{}, true},
		{"VARCHAR(x)", Type{}, true},
		{"VARCHAR)x(", Type{}, true},
	}
	for _, c := range cases {
		got, err := ParseType(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseType(%q): expected error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseType(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseType(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTypeString(t *testing.T) {
	if got := VarCharN(12).String(); got != "VARCHAR(12)" {
		t.Errorf("VarCharN(12).String() = %q", got)
	}
	if got := Integer.String(); got != "INTEGER" {
		t.Errorf("Integer.String() = %q", got)
	}
	if got := (Type{}).String(); got != "UNKNOWN" {
		t.Errorf("zero Type String() = %q", got)
	}
}

func TestValueAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Fatal("zero Value must be NULL")
	}
	if v := NewInt(42); v.Int() != 42 || v.Kind() != KindInt {
		t.Errorf("NewInt: %v", v)
	}
	if v := NewFloat(2.5); v.Float() != 2.5 {
		t.Errorf("NewFloat: %v", v)
	}
	if v := NewString("abc"); v.Str() != "abc" {
		t.Errorf("NewString: %v", v)
	}
	if v := NewBool(true); !v.Bool() {
		t.Errorf("NewBool: %v", v)
	}
}

func TestCoercions(t *testing.T) {
	if n, err := NewString(" 17 ").AsInt(); err != nil || n != 17 {
		t.Errorf("AsInt('17') = %d, %v", n, err)
	}
	if _, err := NewString("x").AsInt(); err == nil {
		t.Error("AsInt('x') should fail")
	}
	if f, err := NewInt(3).AsFloat(); err != nil || f != 3.0 {
		t.Errorf("AsFloat(3) = %v, %v", f, err)
	}
	if b, err := NewString("Yes").AsBool(); err != nil || !b {
		t.Errorf("AsBool('Yes') = %v, %v", b, err)
	}
	if b, err := NewInt(0).AsBool(); err != nil || b {
		t.Errorf("AsBool(0) = %v, %v", b, err)
	}
	if _, err := Null.AsInt(); err == nil {
		t.Error("AsInt(NULL) should fail")
	}
	if _, err := Null.AsString(); err == nil {
		t.Error("AsString(NULL) should fail")
	}
	if _, err := NewString("maybe").AsBool(); err == nil {
		t.Error("AsBool('maybe') should fail")
	}
	if n, err := NewFloat(9.9).AsInt(); err != nil || n != 9 {
		t.Errorf("AsInt(9.9) = %d, %v (truncation expected)", n, err)
	}
	if _, err := NewFloat(math.NaN()).AsInt(); err == nil {
		t.Error("AsInt(NaN) should fail")
	}
	if b, err := NewBool(true).AsInt(); err != nil || b != 1 {
		t.Errorf("AsInt(true) = %d, %v", b, err)
	}
	if f, err := NewBool(true).AsFloat(); err != nil || f != 1 {
		t.Errorf("AsFloat(true) = %v, %v", f, err)
	}
	if f, err := NewFloat(1.25).AsBool(); err != nil || !f {
		t.Errorf("AsBool(1.25) = %v, %v", f, err)
	}
}

func TestFormatAndString(t *testing.T) {
	cases := []struct {
		v      Value
		format string
		str    string
	}{
		{Null, "NULL", "NULL"},
		{NewInt(-5), "-5", "-5"},
		{NewFloat(1.5), "1.5", "1.5"},
		{NewBool(false), "FALSE", "FALSE"},
		{NewString("o'brian"), "o'brian", "'o''brian'"},
	}
	for _, c := range cases {
		if got := c.v.Format(); got != c.format {
			t.Errorf("Format(%v) = %q, want %q", c.v, got, c.format)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestCompare(t *testing.T) {
	lt := [][2]Value{
		{NewInt(1), NewInt(2)},
		{NewInt(1), NewFloat(1.5)},
		{NewFloat(-1), NewInt(0)},
		{NewString("a"), NewString("b")},
		{NewBool(false), NewBool(true)},
	}
	for _, p := range lt {
		c, err := Compare(p[0], p[1])
		if err != nil || c != -1 {
			t.Errorf("Compare(%v,%v) = %d,%v; want -1", p[0], p[1], c, err)
		}
		c, err = Compare(p[1], p[0])
		if err != nil || c != 1 {
			t.Errorf("Compare(%v,%v) = %d,%v; want 1", p[1], p[0], c, err)
		}
	}
	if c, err := Compare(NewInt(3), NewFloat(3.0)); err != nil || c != 0 {
		t.Errorf("Compare(3, 3.0) = %d, %v", c, err)
	}
	if _, err := Compare(Null, NewInt(1)); err != ErrNullCompare {
		t.Errorf("Compare with NULL: %v", err)
	}
	if _, err := Compare(NewString("a"), NewInt(1)); err == nil {
		t.Error("Compare string/int should fail")
	}
	if _, err := Compare(NewBool(true), NewString("t")); err == nil {
		t.Error("Compare bool/string should fail")
	}
}

func TestEqual(t *testing.T) {
	if !NewInt(2).Equal(NewFloat(2.0)) {
		t.Error("2 must equal 2.0")
	}
	if NewInt(2).Equal(NewString("2")) {
		t.Error("2 must not equal '2'")
	}
	if !Null.Equal(Null) {
		t.Error("NULL Equal NULL (identity semantics)")
	}
	if Null.Equal(NewInt(0)) {
		t.Error("NULL != 0")
	}
	nan := NewFloat(math.NaN())
	if !nan.Equal(nan) {
		t.Error("NaN identity equality expected for grouping")
	}
}

func TestHashEqualConsistency(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(7), NewFloat(7.0)},
		{NewInt(0), NewFloat(0)},
		{NewInt(-3), NewFloat(-3)},
	}
	for _, p := range pairs {
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("equal values %v and %v hash differently", p[0], p[1])
		}
	}
	if NewString("a").Hash() == NewString("b").Hash() {
		t.Error("suspicious collision a/b")
	}
}

func TestCast(t *testing.T) {
	if v, err := Cast(NewInt(5), VarCharN(1)); err != nil || v.Str() != "5" {
		t.Errorf("Cast(5, VARCHAR(1)) = %v, %v", v, err)
	}
	if v, err := Cast(NewString("hello"), VarCharN(3)); err != nil || v.Str() != "hel" {
		t.Errorf("Cast truncation = %v, %v", v, err)
	}
	if v, err := Cast(NewString("12"), Integer); err != nil || v.Int() != 12 {
		t.Errorf("Cast('12', INT) = %v, %v", v, err)
	}
	if _, err := Cast(NewInt(1<<40), Integer); err == nil {
		t.Error("INT range check missing")
	}
	if _, err := Cast(NewInt(40000), SmallInt); err == nil {
		t.Error("SMALLINT range check missing")
	}
	if v, err := Cast(NewInt(1<<40), BigInt); err != nil || v.Int() != 1<<40 {
		t.Errorf("Cast BIGINT = %v, %v", v, err)
	}
	if v, err := Cast(Null, Integer); err != nil || !v.IsNull() {
		t.Errorf("Cast(NULL) = %v, %v", v, err)
	}
	if v, err := Cast(NewInt(1), Boolean); err != nil || !v.Bool() {
		t.Errorf("Cast(1, BOOLEAN) = %v, %v", v, err)
	}
	if v, err := Cast(NewInt(2), Double); err != nil || v.Float() != 2 {
		t.Errorf("Cast(2, DOUBLE) = %v, %v", v, err)
	}
	if _, err := Cast(NewInt(1), Type{}); err == nil {
		t.Error("cast to unknown type should fail")
	}
}

func TestConforms(t *testing.T) {
	if !Conforms(Null, Integer) {
		t.Error("NULL conforms to all")
	}
	if !Conforms(NewInt(1), Integer) || Conforms(NewString("1"), Integer) {
		t.Error("integer conformance wrong")
	}
	if !Conforms(NewInt(1), Double) || !Conforms(NewFloat(1), Double) {
		t.Error("numeric widening conformance wrong")
	}
	if !Conforms(NewString("x"), VarChar) || Conforms(NewInt(1), VarChar) {
		t.Error("varchar conformance wrong")
	}
	if !Conforms(NewBool(true), Boolean) || Conforms(NewInt(1), Boolean) {
		t.Error("boolean conformance wrong")
	}
}

func TestTypeOf(t *testing.T) {
	if TypeOf(NewInt(1)) != BigInt || TypeOf(NewFloat(1)) != Double ||
		TypeOf(NewString("")) != VarChar || TypeOf(NewBool(true)) != Boolean {
		t.Error("TypeOf mismatch")
	}
	if TypeOf(Null).Base != UnknownType {
		t.Error("TypeOf(NULL) should be unknown")
	}
}

func randValue(r *rand.Rand, allowNull bool) Value {
	n := 5
	if !allowNull {
		n = 4
	}
	switch r.Intn(n) {
	case 0:
		return NewInt(r.Int63() - r.Int63())
	case 1:
		return NewFloat(r.NormFloat64() * 1e3)
	case 2:
		var b strings.Builder
		for i := 0; i < r.Intn(12); i++ {
			b.WriteByte(byte('a' + r.Intn(26)))
		}
		return NewString(b.String())
	case 3:
		return NewBool(r.Intn(2) == 0)
	default:
		return Null
	}
}

// Property: Compare is antisymmetric and consistent with Equal for
// comparable pairs.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randValue(r, false), randValue(r, false)
		c1, err1 := Compare(a, b)
		c2, err2 := Compare(b, a)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if c1 != -c2 {
			return false
		}
		if c1 == 0 && !(a.Equal(b)) {
			// NaN is the only permitted exception; Compare treats NaN
			// via float ordering which never returns 0 against non-NaN.
			return math.IsNaN(a.f) || math.IsNaN(b.f)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: values that are Equal have equal hashes.
func TestHashProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randValue(r, true)
		b := a
		if r.Intn(2) == 0 && a.Kind() == KindInt {
			b = NewFloat(float64(a.Int()))
			if int64(b.Float()) != a.Int() {
				b = a // not exactly representable; skip the cross-kind case
			}
		}
		if a.Equal(b) && a.Hash() != b.Hash() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cast to BIGINT then back to DOUBLE preserves integral doubles.
func TestCastRoundTripProperty(t *testing.T) {
	f := func(n int32) bool {
		v := NewFloat(float64(n))
		i, err := Cast(v, BigInt)
		if err != nil {
			return false
		}
		back, err := Cast(i, Double)
		if err != nil {
			return false
		}
		return back.Float() == float64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBaseTypePredicates(t *testing.T) {
	for _, b := range []BaseType{SmallIntType, IntegerType, BigIntType, DoubleType} {
		if !b.IsNumeric() {
			t.Errorf("%v should be numeric", b)
		}
	}
	for _, b := range []BaseType{BooleanType, VarCharType, UnknownType} {
		if b.IsNumeric() {
			t.Errorf("%v should not be numeric", b)
		}
	}
	if !SmallIntType.IsInteger() || !IntegerType.IsInteger() || !BigIntType.IsInteger() {
		t.Error("integer predicate broken")
	}
	if DoubleType.IsInteger() || VarCharType.IsInteger() {
		t.Error("non-integers classified as integer")
	}
}

func TestAsFloatEdgeCases(t *testing.T) {
	if f, err := NewString(" 2.5 ").AsFloat(); err != nil || f != 2.5 {
		t.Errorf("AsFloat('2.5') = %v, %v", f, err)
	}
	if _, err := NewString("nope").AsFloat(); err == nil {
		t.Error("AsFloat('nope') should fail")
	}
	if f, err := NewBool(false).AsFloat(); err != nil || f != 0 {
		t.Errorf("AsFloat(false) = %v, %v", f, err)
	}
	if _, err := Null.AsFloat(); err == nil {
		t.Error("AsFloat(NULL) should fail")
	}
}
