package types

import (
	"fmt"
	"math"
)

// Arithmetic over SQL values. Integer op integer stays exact (with overflow
// detection); any double operand promotes the operation to double. NULL
// propagates: any NULL operand yields NULL.

// Add returns a + b.
func Add(a, b Value) (Value, error) { return arith(a, b, "+") }

// Sub returns a - b.
func Sub(a, b Value) (Value, error) { return arith(a, b, "-") }

// Mul returns a * b.
func Mul(a, b Value) (Value, error) { return arith(a, b, "*") }

// Div returns a / b; integer division truncates, division by zero errors.
func Div(a, b Value) (Value, error) { return arith(a, b, "/") }

// Mod returns a % b for integer operands.
func Mod(a, b Value) (Value, error) { return arith(a, b, "%") }

// Neg returns -a.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindNull:
		return Null, nil
	case KindInt:
		if a.i == math.MinInt64 {
			return Null, fmt.Errorf("types: integer overflow negating %d", a.i)
		}
		return NewInt(-a.i), nil
	case KindFloat:
		return NewFloat(-a.f), nil
	default:
		return Null, fmt.Errorf("types: cannot negate %s value", a.kind)
	}
}

// Concat returns the string concatenation a || b.
func Concat(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	as, err := a.AsString()
	if err != nil {
		return Null, err
	}
	bs, err := b.AsString()
	if err != nil {
		return Null, err
	}
	return NewString(as + bs), nil
}

func arith(a, b Value, op string) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !isNumericKind(a.kind) || !isNumericKind(b.kind) {
		return Null, fmt.Errorf("types: operator %s requires numeric operands, got %s and %s", op, a.kind, b.kind)
	}
	if a.kind == KindInt && b.kind == KindInt {
		return intArith(a.i, b.i, op)
	}
	af, _ := a.AsFloat()
	bf, _ := b.AsFloat()
	switch op {
	case "+":
		return NewFloat(af + bf), nil
	case "-":
		return NewFloat(af - bf), nil
	case "*":
		return NewFloat(af * bf), nil
	case "/":
		if bf == 0 {
			return Null, fmt.Errorf("types: division by zero")
		}
		return NewFloat(af / bf), nil
	case "%":
		if bf == 0 {
			return Null, fmt.Errorf("types: division by zero")
		}
		return NewFloat(math.Mod(af, bf)), nil
	}
	return Null, fmt.Errorf("types: unknown operator %q", op)
}

func intArith(x, y int64, op string) (Value, error) {
	switch op {
	case "+":
		s := x + y
		if (s > x) != (y > 0) {
			return Null, fmt.Errorf("types: integer overflow in %d + %d", x, y)
		}
		return NewInt(s), nil
	case "-":
		d := x - y
		if (d < x) != (y > 0) {
			return Null, fmt.Errorf("types: integer overflow in %d - %d", x, y)
		}
		return NewInt(d), nil
	case "*":
		if x != 0 && y != 0 {
			p := x * y
			if p/y != x || (x == -1 && y == math.MinInt64) || (y == -1 && x == math.MinInt64) {
				return Null, fmt.Errorf("types: integer overflow in %d * %d", x, y)
			}
			return NewInt(p), nil
		}
		return NewInt(0), nil
	case "/":
		if y == 0 {
			return Null, fmt.Errorf("types: division by zero")
		}
		if x == math.MinInt64 && y == -1 {
			return Null, fmt.Errorf("types: integer overflow in %d / %d", x, y)
		}
		return NewInt(x / y), nil
	case "%":
		if y == 0 {
			return Null, fmt.Errorf("types: division by zero")
		}
		if x == math.MinInt64 && y == -1 {
			return NewInt(0), nil
		}
		return NewInt(x % y), nil
	}
	return Null, fmt.Errorf("types: unknown operator %q", op)
}
