// Package fedwf is a from-scratch Go reproduction of
//
//	K. Hergula, T. Härder: "Coupling of FDBS and WfMS for Integrating
//	Database and Application Systems: Architecture, Complexity,
//	Performance", EDBT 2002.
//
// The module implements the paper's complete integration server: a
// federated database system (SQL parser, planner, Volcano executor,
// SQL/MED wrappers, user-defined table functions), a production workflow
// management system (activities, control/data connectors, parallel
// navigation, do-until blocks), the controller process, three simulated
// application systems, and both measured integration architectures — the
// WfMS approach and the enhanced SQL UDTF approach — plus the experiment
// harness that regenerates every table and figure of the evaluation.
//
// Entry points:
//
//   - internal/fdbs:      the assembled integration server facade
//   - internal/fedfunc:   the federated function mapping catalog and the
//     two architecture stacks
//   - internal/benchharn: the experiment harness (E1-E7)
//   - cmd/paperbench:     regenerates the paper's tables and figures
//   - cmd/fedserver, cmd/fedsql, cmd/wfrun: server, client, workflow runner
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package fedwf
