// Command fedlint runs the repo's analyzer suite (internal/lintrules)
// over the module and exits non-zero on any finding. It is stdlib-only:
// packages are parsed with go/parser and type-checked with go/types
// against the $GOROOT source importer, so the module's go.mod stays
// dependency-free.
//
// Usage:
//
//	go run ./cmd/fedlint ./...
//	go run ./cmd/fedlint -json ./...
//	go run ./cmd/fedlint -list
//	go run ./cmd/fedlint -update-wireschema
//
// The only supported pattern is ./... (the whole module); fedlint's rules
// are cross-package (layering, harness restrictions), so partial loads
// would weaken them. Findings print as file:line:col: message [rule] —
// or, with -json, as a JSON array of {file,line,col,rule,message} for
// editor and CI integration — and can be suppressed in place with
// //fedlint:ignore <rule> <reason>. -update-wireschema regenerates the
// wireschema.json goldens that the wirecompat rule checks drift against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fedwf/internal/lintrules"
)

func main() {
	list := flag.Bool("list", false, "list the analyzer rules and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array of {file,line,col,rule,message}")
	updateWire := flag.Bool("update-wireschema", false, "regenerate the wireschema.json goldens and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fedlint [-list] [-json] [-update-wireschema] ./...\n\nrules:\n")
		for _, a := range lintrules.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lintrules.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "..." {
			fmt.Fprintf(os.Stderr, "fedlint: unsupported pattern %q (only ./... — the rules are cross-package)\n", arg)
			os.Exit(2)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedlint:", err)
		os.Exit(2)
	}
	loader, err := lintrules.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedlint:", err)
		os.Exit(2)
	}

	if *updateWire {
		written, err := lintrules.UpdateWireSchemas(pkgs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedlint:", err)
			os.Exit(2)
		}
		for _, path := range written {
			if rel, err := filepath.Rel(root, path); err == nil {
				path = rel
			}
			fmt.Println("wrote", path)
		}
		return
	}

	diags := lintrules.RunAnalyzers(pkgs, lintrules.Analyzers())
	for i := range diags {
		// Print module-relative paths so the output is stable across
		// machines and clickable from the repo root.
		if rel, err := filepath.Rel(root, diags[i].Position.Filename); err == nil {
			diags[i].Position.Filename = rel
		}
	}
	if *asJSON {
		type finding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{
				File: d.Position.Filename, Line: d.Position.Line, Col: d.Position.Column,
				Rule: d.Rule, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "fedlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fedlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
