// Command wfrun executes one federated function's workflow process
// directly on the workflow engine (bypassing the FDBS), printing the
// output container and optionally the audit trail:
//
//	wfrun -list
//	wfrun -process BuySuppComp -args "4,washer" -audit
//	wfrun -process AllCompNames
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"fedwf/internal/appsys"
	"fedwf/internal/fedfunc"
	"fedwf/internal/rpc"
	"fedwf/internal/simlat"
	"fedwf/internal/types"
	"fedwf/internal/wfms"
)

func main() {
	name := flag.String("process", "", "federated function whose process to run")
	argList := flag.String("args", "", "comma-separated input arguments")
	audit := flag.Bool("audit", false, "print the audit trail")
	list := flag.Bool("list", false, "list available processes")
	flag.Parse()

	if *list {
		for _, spec := range fedfunc.Specs() {
			params := make([]string, len(spec.Params))
			for i, p := range spec.Params {
				params[i] = p.Name + " " + p.Type.String()
			}
			fmt.Printf("%-22s (%s)  [%s]\n", spec.Name, strings.Join(params, ", "), spec.Case)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "wfrun: -process is required (try -list)")
		os.Exit(1)
	}
	spec, err := fedfunc.SpecByName(*name)
	if err != nil {
		fail(err)
	}
	process := spec.Process()

	var rawArgs []string
	if strings.TrimSpace(*argList) != "" {
		rawArgs = strings.Split(*argList, ",")
	}
	if len(rawArgs) != len(spec.Params) {
		fail(fmt.Errorf("%s expects %d arguments, got %d", spec.Name, len(spec.Params), len(rawArgs)))
	}
	input := make(map[string]types.Value, len(rawArgs))
	for i, raw := range rawArgs {
		v, err := types.Cast(types.NewString(strings.TrimSpace(raw)), spec.Params[i].Type)
		if err != nil {
			fail(fmt.Errorf("argument %s: %w", spec.Params[i].Name, err))
		}
		input[strings.ToLower(spec.Params[i].Name)] = v
	}

	apps, err := appsys.BuildScenario()
	if err != nil {
		fail(err)
	}
	client := rpc.NewInProc(apps.Handler())
	invoker := wfms.InvokerFunc(func(ctx context.Context, task *simlat.Task, system, function string, args []types.Value) (*types.Table, error) {
		return client.Call(ctx, task, rpc.Request{System: system, Function: function, Args: args})
	})
	profile := simlat.DefaultProfile()
	engine := wfms.New(invoker, wfms.CostsFromProfile(profile))

	task := simlat.NewVirtualTask()
	res, err := engine.RunDetailedContext(context.Background(), task, process, input)
	if err != nil {
		fail(err)
	}
	fmt.Printf("process %s: %d activities, %s simulated elapsed time\n\n",
		process.Name, res.Activities, task.Elapsed())
	fmt.Print(res.Output.String())
	fmt.Printf("(%d rows)\n", res.Output.Len())
	if *audit {
		fmt.Println("\naudit trail:")
		for _, ev := range res.Audit {
			fmt.Printf("  %10s  %-20s %-10s rows=%d\n", ev.At, ev.Node, ev.Event, ev.Rows)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wfrun:", err)
	os.Exit(1)
}
