// Command fedtop is a top-style live console for a running fedserver: it
// polls the metrics listener's /stats/statements, /audit, /wf/instances,
// and /slo endpoints and renders statements, workflow instances, recent
// journal events, and SLO burn rates as one refreshing view.
//
//	fedtop -metrics 127.0.0.1:9090
//	fedtop -metrics 127.0.0.1:9090 -interval 1s -n 15
//	fedtop -metrics 127.0.0.1:9090 -once
//
// Burn rates read as "error-budget consumption speed": 1.0 burns exactly
// the budget the availability objective allows; sustained values above
// 1.0 on the longer windows mean the SLO will be missed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

// Mirrors of the server's JSON payloads — only the fields the view needs.

type stmtRow struct {
	Fingerprint string  `json:"fingerprint"`
	Query       string  `json:"query"`
	Calls       int64   `json:"calls"`
	Rows        int64   `json:"rows"`
	Errors      int64   `json:"errors"`
	TotalMS     float64 `json:"total_ms"`
	MeanMS      float64 `json:"mean_ms"`
	P99MS       float64 `json:"p99_ms"`
}

type auditEvent struct {
	Seq       uint64 `json:"seq"`
	Kind      string `json:"kind"`
	Func      string `json:"func"`
	Instance  string `json:"instance"`
	Node      string `json:"node"`
	Detail    string `json:"detail"`
	Row       int    `json:"row"`
	Rows      int    `json:"rows"`
	Batch     int    `json:"batch"`
	Acts      int    `json:"activities"`
	Err       string `json:"error"`
	StartVTNS int64  `json:"start_vt_ns"`
	DurVTNS   int64  `json:"dur_vt_ns"`
}

type auditPayload struct {
	Seq     uint64       `json:"seq"`
	Live    int          `json:"live"`
	Dropped int64        `json:"dropped"`
	Events  []auditEvent `json:"events"`
}

type instancesPayload struct {
	Instances []auditEvent `json:"instances"`
}

type windowBurn struct {
	Window      string  `json:"window"`
	Statements  int     `json:"statements"`
	Errors      int     `json:"errors"`
	Slow        int     `json:"slow"`
	AvailBurn   float64 `json:"availability_burn"`
	LatencyBurn float64 `json:"latency_burn"`
}

type sloReport struct {
	Objectives struct {
		Availability float64 `json:"availability"`
		LatencyNS    int64   `json:"latency_ns"`
	} `json:"objectives"`
	NowVTNS int64        `json:"now_vt_ns"`
	Windows []windowBurn `json:"windows"`
}

func main() {
	metrics := flag.String("metrics", "127.0.0.1:9090", "fedserver metrics listener (host:port)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	n := flag.Int("n", 10, "rows per section")
	once := flag.Bool("once", false, "render one frame and exit (no screen clearing)")
	flag.Parse()

	base := *metrics
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 5 * time.Second}

	for {
		frame, err := render(client, base, *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedtop:", err)
			if *once {
				os.Exit(1)
			}
		} else {
			if !*once {
				fmt.Print("\033[H\033[2J") // clear and home
			}
			fmt.Print(frame)
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func render(client *http.Client, base string, n int) (string, error) {
	var slo sloReport
	if err := getJSON(client, base+"/slo", &slo); err != nil {
		return "", err
	}
	var audit auditPayload
	if err := getJSON(client, fmt.Sprintf("%s/audit?n=%d", base, n), &audit); err != nil {
		return "", err
	}
	var inst instancesPayload
	if err := getJSON(client, fmt.Sprintf("%s/wf/instances?n=%d", base, n), &inst); err != nil {
		return "", err
	}
	var stmts []stmtRow
	if err := getJSON(client, base+"/stats/statements", &stmts); err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "fedtop — %s — vt %.1f paper-s — journal seq %d (live %d, dropped %d)\n\n",
		base, float64(slo.NowVTNS)/1e9, audit.Seq, audit.Live, audit.Dropped)

	fmt.Fprintf(&b, "SLO  availability %.4f, latency %.0f paper-ms\n",
		slo.Objectives.Availability, float64(slo.Objectives.LatencyNS)/1e6)
	fmt.Fprintf(&b, "%-6s %10s %8s %6s %12s %12s\n", "window", "statements", "errors", "slow", "avail burn", "lat burn")
	for _, w := range slo.Windows {
		marker := ""
		if w.AvailBurn > 1 || w.LatencyBurn > 1 {
			marker = "  << burning"
		}
		fmt.Fprintf(&b, "%-6s %10d %8d %6d %12.2f %12.2f%s\n",
			w.Window, w.Statements, w.Errors, w.Slow, w.AvailBurn, w.LatencyBurn, marker)
	}

	b.WriteString("\nTOP STATEMENTS (by total paper time)\n")
	sort.Slice(stmts, func(i, j int) bool { return stmts[i].TotalMS > stmts[j].TotalMS })
	if len(stmts) > n {
		stmts = stmts[:n]
	}
	fmt.Fprintf(&b, "%-18s %7s %6s %6s %10s %9s %9s  %s\n",
		"fingerprint", "calls", "rows", "errs", "total_ms", "mean_ms", "p99_ms", "query")
	for _, s := range stmts {
		fmt.Fprintf(&b, "%-18s %7d %6d %6d %10.1f %9.2f %9.2f  %s\n",
			s.Fingerprint, s.Calls, s.Rows, s.Errors, s.TotalMS, s.MeanMS, s.P99MS, clip(s.Query, 48))
	}

	b.WriteString("\nWORKFLOW INSTANCES (newest first)\n")
	fmt.Fprintf(&b, "%-10s %-20s %6s %5s %5s %10s %9s  %s\n",
		"instance", "process", "batch", "acts", "rows", "start_vt", "dur_ms", "err")
	for _, e := range inst.Instances {
		fmt.Fprintf(&b, "%-10s %-20s %6d %5d %5d %10.1f %9.2f  %s\n",
			e.Instance, e.Func, e.Batch, e.Acts, e.Rows, float64(e.StartVTNS)/1e6, float64(e.DurVTNS)/1e6, clip(e.Err, 32))
	}

	b.WriteString("\nRECENT EVENTS (newest first)\n")
	fmt.Fprintf(&b, "%-6s %-12s %-20s %-10s %-12s %4s %5s %10s  %s\n",
		"seq", "kind", "func", "instance", "node/detail", "row", "rows", "start_vt", "err")
	for _, e := range audit.Events {
		nd := e.Node
		if e.Detail != "" {
			nd += "/" + e.Detail
		}
		fmt.Fprintf(&b, "%-6d %-12s %-20s %-10s %-12s %4d %5d %10.1f  %s\n",
			e.Seq, e.Kind, clip(e.Func, 20), e.Instance, clip(nd, 12), e.Row, e.Rows,
			float64(e.StartVTNS)/1e6, clip(e.Err, 32))
	}
	return b.String(), nil
}

func clip(s string, n int) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}
