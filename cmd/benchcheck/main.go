// Command benchcheck validates and compares paperbench -json record
// files. In validate mode it parses the JSON, rejects structurally
// malformed output, and optionally asserts that specific experiments are
// present. In compare mode (-compare) it diffs two record files and fails
// when any measurement regressed by more than -threshold percent, so CI
// can gate merges on benchmark drift instead of eyeballing artifacts.
//
//	paperbench -exp batch -json bench.json && benchcheck -require E8,E13 bench.json
//	benchcheck < bench.json
//	benchcheck -compare -threshold 5 BENCH_seed.json BENCH_head.json
//
// Compare mode keys each record by experiment|arch|function|step|dop|calls
// and sums paper_ms per key (some experiments emit several records per
// configuration). Keys present in only one file are reported but do not
// fail the check — experiments come and go across PRs — but zero key
// overlap fails, since that means the files are not comparable at all.
// Most measurements are latencies, where growth is a regression; keys
// whose step contains "throughput" measure rates, so there the direction
// flips and a DROP beyond the threshold fails instead.
//
// Exit status is 0 when the input is well-formed (and every required
// experiment appears / no measurement regressed), 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// record mirrors paperbench's -json output shape.
type record struct {
	Experiment string  `json:"experiment"`
	Arch       string  `json:"arch"`
	Function   string  `json:"function"`
	Step       string  `json:"step"`
	DOP        int     `json:"dop"`
	Calls      int     `json:"calls"`
	PaperMS    float64 `json:"paper_ms"`
}

// key is the comparison identity of a record: everything but the
// measurement itself.
func (r record) key() string {
	return fmt.Sprintf("%s|%s|%s|%s|dop=%d|calls=%d",
		strings.ToUpper(r.Experiment), r.Arch, r.Function, r.Step, r.DOP, r.Calls)
}

func main() {
	require := flag.String("require", "", "comma-separated experiment ids that must appear (e.g. E8,E13)")
	compare := flag.Bool("compare", false, "compare two record files (old new) and fail on regressions")
	threshold := flag.Float64("threshold", 5, "with -compare: max allowed paper_ms increase in percent")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fail(fmt.Errorf("-compare takes exactly two files (old new), got %d args", flag.NArg()))
		}
		runCompare(flag.Arg(0), flag.Arg(1), *threshold)
		return
	}

	var in io.Reader = os.Stdin
	src := "stdin"
	if flag.NArg() > 1 {
		fail(fmt.Errorf("at most one input file, got %d", flag.NArg()))
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
		src = flag.Arg(0)
	}

	records, seen := load(in, src)
	if *require != "" {
		for _, id := range strings.Split(*require, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if id == "" {
				continue
			}
			if seen[id] == 0 {
				fail(fmt.Errorf("%s: required experiment %s has no records", src, id))
			}
		}
	}
	fmt.Printf("benchcheck: %d records ok", len(records))
	if len(seen) > 0 {
		ids := make([]string, 0, len(seen))
		for id := range seen {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Printf(" (%s)", strings.Join(ids, ", "))
	}
	fmt.Println()
}

// load parses and structurally validates one record file, returning the
// records plus per-experiment counts.
func load(in io.Reader, src string) ([]record, map[string]int) {
	dec := json.NewDecoder(in)
	dec.DisallowUnknownFields()
	var records []record
	if err := dec.Decode(&records); err != nil {
		fail(fmt.Errorf("%s: %w", src, err))
	}
	if dec.More() {
		fail(fmt.Errorf("%s: trailing data after the record list", src))
	}
	if len(records) == 0 {
		fail(fmt.Errorf("%s: no records", src))
	}
	seen := map[string]int{}
	for i, r := range records {
		if r.Experiment == "" {
			fail(fmt.Errorf("%s: record %d has no experiment id", src, i))
		}
		if r.PaperMS < 0 || math.IsNaN(r.PaperMS) || math.IsInf(r.PaperMS, 0) {
			fail(fmt.Errorf("%s: record %d (%s): bad paper_ms %v", src, i, r.Experiment, r.PaperMS))
		}
		seen[strings.ToUpper(r.Experiment)]++
	}
	return records, seen
}

// sums aggregates a record list into key -> total paper_ms.
func sums(records []record) map[string]float64 {
	out := map[string]float64{}
	for _, r := range records {
		out[r.key()] += r.PaperMS
	}
	return out
}

// runCompare diffs oldPath against newPath and exits nonzero when any
// shared key's paper_ms grew by more than threshold percent.
func runCompare(oldPath, newPath string, threshold float64) {
	if threshold < 0 {
		fail(fmt.Errorf("-threshold must be >= 0, got %v", threshold))
	}
	oldSums := sums(loadFile(oldPath))
	newSums := sums(loadFile(newPath))

	keys := make([]string, 0, len(oldSums))
	for k := range oldSums {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var regressions, shared, missing int
	for _, k := range keys {
		oldMS := oldSums[k]
		newMS, ok := newSums[k]
		if !ok {
			missing++
			fmt.Printf("benchcheck: note: %s only in %s\n", k, oldPath)
			continue
		}
		shared++
		if higherIsBetter(k) {
			// Rate measurements regress downward: flag a drop beyond the
			// threshold, not growth.
			limit := oldMS * (1 - threshold/100)
			switch {
			case newMS < limit:
				regressions++
				fmt.Printf("benchcheck: REGRESSION %s: %.3f -> %.3f (%+.1f%%, limit -%.1f%%)\n",
					k, oldMS, newMS, pctChange(oldMS, newMS), threshold)
			case newMS != oldMS:
				fmt.Printf("benchcheck: ok %s: %.3f -> %.3f (%+.1f%%)\n", k, oldMS, newMS, pctChange(oldMS, newMS))
			}
			continue
		}
		limit := oldMS * (1 + threshold/100)
		switch {
		case newMS > limit:
			regressions++
			fmt.Printf("benchcheck: REGRESSION %s: %.3fms -> %.3fms (+%.1f%%, limit +%.1f%%)\n",
				k, oldMS, newMS, pctChange(oldMS, newMS), threshold)
		case newMS != oldMS:
			fmt.Printf("benchcheck: ok %s: %.3fms -> %.3fms (%+.1f%%)\n", k, oldMS, newMS, pctChange(oldMS, newMS))
		}
	}
	newKeys := make([]string, 0, len(newSums))
	for k := range newSums {
		if _, ok := oldSums[k]; !ok {
			newKeys = append(newKeys, k)
		}
	}
	sort.Strings(newKeys)
	for _, k := range newKeys {
		fmt.Printf("benchcheck: note: %s only in %s\n", k, newPath)
	}

	if shared == 0 {
		fail(fmt.Errorf("no overlapping measurement keys between %s and %s", oldPath, newPath))
	}
	if regressions > 0 {
		fail(fmt.Errorf("%d of %d shared measurements regressed beyond +%.1f%%", regressions, shared, threshold))
	}
	fmt.Printf("benchcheck: compare ok: %d shared measurements within +%.1f%% (%d old-only, %d new-only)\n",
		shared, threshold, missing, len(newKeys))
}

// higherIsBetter reports whether a comparison key measures a rate (its
// step segment mentions throughput) rather than a latency.
func higherIsBetter(key string) bool {
	return strings.Contains(strings.ToLower(key), "throughput")
}

// pctChange returns the percent change from oldMS to newMS; a zero
// baseline with a nonzero head reads as +infinity-ish, rendered as 100%.
func pctChange(oldMS, newMS float64) float64 {
	if oldMS == 0 {
		if newMS == 0 {
			return 0
		}
		return 100
	}
	return (newMS - oldMS) / oldMS * 100
}

// loadFile opens and parses one record file.
func loadFile(path string) []record {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	records, _ := load(f, path)
	return records
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
