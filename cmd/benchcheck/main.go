// Command benchcheck validates a paperbench -json record file: it parses
// the JSON, rejects structurally malformed output, and optionally asserts
// that specific experiments are present. CI pipes fresh paperbench output
// through it so a refactor that silently breaks the bench emitters fails
// the build instead of publishing an empty benchmark artifact.
//
//	paperbench -exp batch -json bench.json && benchcheck -require E8,E13 bench.json
//	benchcheck < bench.json
//
// Exit status is 0 when the file is well-formed (and every required
// experiment appears), 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// record mirrors paperbench's -json output shape.
type record struct {
	Experiment string  `json:"experiment"`
	Arch       string  `json:"arch"`
	Function   string  `json:"function"`
	Step       string  `json:"step"`
	DOP        int     `json:"dop"`
	Calls      int     `json:"calls"`
	PaperMS    float64 `json:"paper_ms"`
}

func main() {
	require := flag.String("require", "", "comma-separated experiment ids that must appear (e.g. E8,E13)")
	flag.Parse()

	var in io.Reader = os.Stdin
	src := "stdin"
	if flag.NArg() > 1 {
		fail(fmt.Errorf("at most one input file, got %d", flag.NArg()))
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
		src = flag.Arg(0)
	}

	dec := json.NewDecoder(in)
	dec.DisallowUnknownFields()
	var records []record
	if err := dec.Decode(&records); err != nil {
		fail(fmt.Errorf("%s: %w", src, err))
	}
	if dec.More() {
		fail(fmt.Errorf("%s: trailing data after the record list", src))
	}
	if len(records) == 0 {
		fail(fmt.Errorf("%s: no records", src))
	}
	seen := map[string]int{}
	for i, r := range records {
		if r.Experiment == "" {
			fail(fmt.Errorf("%s: record %d has no experiment id", src, i))
		}
		if r.PaperMS < 0 || math.IsNaN(r.PaperMS) || math.IsInf(r.PaperMS, 0) {
			fail(fmt.Errorf("%s: record %d (%s): bad paper_ms %v", src, i, r.Experiment, r.PaperMS))
		}
		seen[strings.ToUpper(r.Experiment)]++
	}
	if *require != "" {
		for _, id := range strings.Split(*require, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if id == "" {
				continue
			}
			if seen[id] == 0 {
				fail(fmt.Errorf("%s: required experiment %s has no records", src, id))
			}
		}
	}
	fmt.Printf("benchcheck: %d records ok", len(records))
	if len(seen) > 0 {
		ids := make([]string, 0, len(seen))
		for id := range seen {
			ids = append(ids, id)
		}
		// Deterministic order for log readability.
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if ids[j] < ids[i] {
					ids[i], ids[j] = ids[j], ids[i]
				}
			}
		}
		fmt.Printf(" (%s)", strings.Join(ids, ", "))
	}
	fmt.Println()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
