// Command paperbench regenerates every table and figure of the paper's
// evaluation on the simulated testbed:
//
//	paperbench -exp all          # everything (default)
//	paperbench -exp complexity   # Sect. 3 mapping-complexity table (E1)
//	paperbench -exp fig5         # Fig. 5 elapsed-time comparison (E2)
//	paperbench -exp fig6         # Fig. 6 time-portion breakdowns (E3)
//	paperbench -exp bootstate    # cold/warm/hot call times (E4)
//	paperbench -exp parallel     # parallel vs sequential (E5)
//	paperbench -exp loop         # do-until loop scaling (E6)
//	paperbench -exp controller   # controller ablation (E7)
//	paperbench -exp batch        # batch throughput scaling (E8, extension)
//	paperbench -exp dop          # intra-query parallelism sweep (E9, extension)
//
// Measurements run on the deterministic virtual clock, so the output is
// identical on every machine.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fedwf/internal/benchharn"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: all, complexity, fig5, fig6, bootstate, parallel, loop, controller, batch, dop")
	bootFn := flag.String("bootfn", "GetSuppQual", "federated function for the boot-state experiment")
	dops := flag.String("dops", "1,2,4,8", "comma-separated degrees of parallelism for the E9 sweep")
	flag.Parse()

	h, err := benchharn.New()
	if err != nil {
		fail(err)
	}
	selected := strings.ToLower(*exp)
	run := func(id string) bool { return selected == "all" || selected == id }
	any := false

	if run("complexity") {
		any = true
		section("E1 - Mapping complexity (Sect. 3 table)")
		rows, err := h.Capabilities()
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderCapabilities(rows))
	}
	if run("fig5") {
		any = true
		section("E2 - Elapsed-time comparison (Fig. 5)")
		rows, err := h.Fig5()
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderFig5(rows))
	}
	if run("fig6") {
		any = true
		section("E3 - Time portions of GetNoSuppComp (Fig. 6)")
		wf, ud, err := h.Fig6()
		if err != nil {
			fail(err)
		}
		fmt.Println(benchharn.RenderBreakdown(wf))
		fmt.Println(benchharn.RenderBreakdown(ud))
	}
	if run("bootstate") {
		any = true
		section("E4 - Boot states: initial / after-other-function / repeated")
		rows, err := h.BootStates(*bootFn)
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderBootStates(rows))
	}
	if run("parallel") {
		any = true
		section("E5 - Parallel (GetSuppQualRelia) vs sequential (GetSuppQual)")
		rows, err := h.ParallelVsSequential()
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderParallel(rows))
	}
	if run("loop") {
		any = true
		section("E6 - Do-until loop scaling (AllCompNames)")
		rows, err := h.LoopScaling([]int{1, 2, 4, 8, 16, 24})
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderLoop(rows))
	}
	if run("controller") {
		any = true
		section("E7 - Controller ablation")
		rows, with, without, err := h.ControllerAblation()
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderAblation(rows, with, without))
	}
	if run("batch") {
		any = true
		section("E8 - Batch throughput scaling (extension beyond the paper)")
		rows, err := h.BatchScaling([]int{1, 2, 4, 8, 16})
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderBatch(rows))
	}
	if run("dop") {
		any = true
		section("E9 - Intra-query parallelism: ParallelApply DOP sweep (extension)")
		list, err := parseDOPs(*dops)
		if err != nil {
			fail(err)
		}
		rows, err := h.ParallelLateral(list)
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderDOP(rows))
	}
	if !any {
		fail(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func parseDOPs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -dops value %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func section(title string) {
	fmt.Println()
	fmt.Println("=== " + title + " ===")
	fmt.Println()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}
