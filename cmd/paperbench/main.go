// Command paperbench regenerates every table and figure of the paper's
// evaluation on the simulated testbed:
//
//	paperbench -exp all          # everything (default)
//	paperbench -exp complexity   # Sect. 3 mapping-complexity table (E1)
//	paperbench -exp fig5         # Fig. 5 elapsed-time comparison (E2)
//	paperbench -exp fig6         # Fig. 6 time-portion breakdowns (E3)
//	paperbench -exp bootstate    # cold/warm/hot call times (E4)
//	paperbench -exp parallel     # parallel vs sequential (E5)
//	paperbench -exp loop         # do-until loop scaling (E6)
//	paperbench -exp controller   # controller ablation (E7)
//	paperbench -exp batch        # batch throughput scaling (E8, extension)
//	paperbench -exp dop          # intra-query parallelism sweep (E9, extension)
//	paperbench -exp spans        # Fig. 6 from live spans (E10, extension)
//	paperbench -exp faults       # fault-tolerance sweep + demos (E12, extension)
//	paperbench -exp stats        # statement-statistics warehouse accuracy (E14, extension)
//	paperbench -exp audit        # audit-journal accuracy + SLO burn rates (E15, extension)
//	paperbench -exp serve        # high-concurrency serving: sessions, admission, pipelining (E16, extension)
//
// With -json <path>, the numeric results of the experiments that ran are
// additionally written as a JSON record list (experiment, arch, function,
// step, dop, paper_ms), for machine consumption.
//
// Measurements run on the deterministic virtual clock, so the output is
// identical on every machine.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"fedwf/internal/benchharn"
	"fedwf/internal/fedfunc"
	"fedwf/internal/obs/stats"
	"fedwf/internal/resil"
	"fedwf/internal/simlat"
)

// record is one numeric result in the -json output.
type record struct {
	Experiment string  `json:"experiment"`
	Arch       string  `json:"arch,omitempty"`
	Function   string  `json:"function,omitempty"`
	Step       string  `json:"step,omitempty"`
	DOP        int     `json:"dop,omitempty"`
	Calls      int     `json:"calls,omitempty"`
	PaperMS    float64 `json:"paper_ms"`
}

func paperMS(d time.Duration) float64 { return float64(d) / float64(simlat.PaperMS) }

func main() {
	exp := flag.String("exp", "all", "experiment ids (comma-separated): all, complexity, fig5, fig6, bootstate, parallel, loop, controller, batch, dop, spans, faults, stats, audit, serve")
	seed := flag.Uint64("seed", 42, "fault-injection seed for -exp faults and -exp audit (same seed, same faults)")
	bootFn := flag.String("bootfn", "GetSuppQual", "federated function for the boot-state experiment")
	dops := flag.String("dops", "1,2,4,8", "comma-separated degrees of parallelism for the E9 sweep")
	batchSize := flag.Int("batchsize", 8, "chunk size for the E13 set-orientation experiment")
	jsonPath := flag.String("json", "", "also write the numeric results as JSON to this path")
	traceOut := flag.String("trace-out", "", "with -exp spans: write each architecture's span tree as JSON into this directory (virtual-clock trees are deterministic, so the files diff cleanly across commits)")
	flag.Parse()

	h, err := benchharn.New()
	if err != nil {
		fail(err)
	}
	selected := strings.ToLower(*exp)
	run := func(id string) bool {
		if selected == "all" {
			return true
		}
		for _, part := range strings.Split(selected, ",") {
			if strings.TrimSpace(part) == id {
				return true
			}
		}
		return false
	}
	any := false
	var records []record

	if run("complexity") {
		any = true
		section("E1 - Mapping complexity (Sect. 3 table)")
		rows, err := h.Capabilities(context.Background())
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderCapabilities(rows))
	}
	if run("fig5") {
		any = true
		section("E2 - Elapsed-time comparison (Fig. 5)")
		rows, err := h.Fig5(context.Background())
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderFig5(rows))
		for _, r := range rows {
			if r.WfMS > 0 {
				records = append(records, record{Experiment: "E2", Arch: "wfms", Function: r.Function, PaperMS: paperMS(r.WfMS)})
			}
			if r.UDTF > 0 {
				records = append(records, record{Experiment: "E2", Arch: "udtf", Function: r.Function, PaperMS: paperMS(r.UDTF)})
			}
		}
	}
	if run("fig6") {
		any = true
		section("E3 - Time portions of GetNoSuppComp (Fig. 6)")
		wf, ud, err := h.Fig6(context.Background())
		if err != nil {
			fail(err)
		}
		fmt.Println(benchharn.RenderBreakdown(wf))
		fmt.Println(benchharn.RenderBreakdown(ud))
		for _, b := range []*benchharn.Breakdown{wf, ud} {
			for _, s := range b.Steps {
				records = append(records, record{Experiment: "E3", Arch: b.Arch, Function: "GetNoSuppComp", Step: s.Name, PaperMS: paperMS(s.Total)})
			}
		}
	}
	if run("bootstate") {
		any = true
		section("E4 - Boot states: initial / after-other-function / repeated")
		rows, err := h.BootStates(context.Background(), *bootFn)
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderBootStates(rows))
		for _, r := range rows {
			records = append(records,
				record{Experiment: "E4", Arch: r.Arch, Function: r.Function, Step: "cold", PaperMS: paperMS(r.Cold)},
				record{Experiment: "E4", Arch: r.Arch, Function: r.Function, Step: "warm", PaperMS: paperMS(r.Warm)},
				record{Experiment: "E4", Arch: r.Arch, Function: r.Function, Step: "hot", PaperMS: paperMS(r.Hot)})
		}
	}
	if run("parallel") {
		any = true
		section("E5 - Parallel (GetSuppQualRelia) vs sequential (GetSuppQual)")
		rows, err := h.ParallelVsSequential(context.Background())
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderParallel(rows))
		for _, r := range rows {
			records = append(records,
				record{Experiment: "E5", Arch: r.Arch, Function: "GetSuppQualRelia", PaperMS: paperMS(r.Parallel)},
				record{Experiment: "E5", Arch: r.Arch, Function: "GetSuppQual", PaperMS: paperMS(r.Sequential)})
		}
	}
	if run("loop") {
		any = true
		section("E6 - Do-until loop scaling (AllCompNames)")
		rows, err := h.LoopScaling(context.Background(), []int{1, 2, 4, 8, 16, 24})
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderLoop(rows))
		for _, r := range rows {
			records = append(records, record{Experiment: "E6", Function: "AllCompNames", Calls: r.Calls, PaperMS: paperMS(r.Elapsed)})
		}
	}
	if run("controller") {
		any = true
		section("E7 - Controller ablation")
		rows, with, without, err := h.ControllerAblation(context.Background())
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderAblation(rows, with, without))
		for _, r := range rows {
			records = append(records,
				record{Experiment: "E7", Arch: r.Arch, Function: "GetNoSuppComp", Step: "with-controller", PaperMS: paperMS(r.With)},
				record{Experiment: "E7", Arch: r.Arch, Function: "GetNoSuppComp", Step: "without-controller", PaperMS: paperMS(r.Without)})
		}
	}
	if run("batch") {
		any = true
		section("E8 - Batch throughput scaling (extension beyond the paper)")
		rows, err := h.BatchScaling(context.Background(), []int{1, 2, 4, 8, 16})
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderBatch(rows))
		for _, r := range rows {
			records = append(records,
				record{Experiment: "E8", Arch: "wfms", Calls: r.Calls, PaperMS: paperMS(r.WfMS)},
				record{Experiment: "E8", Arch: "udtf", Calls: r.Calls, PaperMS: paperMS(r.UDTF)})
		}

		section("E13 - Set-oriented federated calls (extension)")
		setRows, err := h.SetOriented(context.Background(), []int{8, 16, 24}, *batchSize)
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderSetOriented(setRows))
		// The acceptance bars of the experiment: a batched chunk is ONE wire
		// request and ONE workflow instance, so at chunk size B the batched
		// mode issues at most ceil(N/B) of each; and batching on top of
		// parallelism must still win, strictly, at every measured N.
		perRowParallel := make(map[string]time.Duration)
		for _, r := range setRows {
			key := fmt.Sprintf("%s/%d", r.Arch.Label(), r.N)
			switch r.Mode {
			case "batched":
				chunks := int64((r.N + *batchSize - 1) / *batchSize)
				if r.RPCs > chunks {
					fail(fmt.Errorf("E13: batched mode issued %d RPCs for N=%d, want <= %d", r.RPCs, r.N, chunks))
				}
				if r.Arch == fedfunc.ArchWfMS && r.WfInst > chunks {
					fail(fmt.Errorf("E13: batched mode started %d workflow instances for N=%d, want <= %d", r.WfInst, r.N, chunks))
				}
			case "parallel":
				perRowParallel[key] = r.Elapsed
			case "batched+parallel":
				if seq, ok := perRowParallel[key]; ok && r.Elapsed >= seq {
					fail(fmt.Errorf("E13: batched+parallel %v not below per-row parallel %v at %s", r.Elapsed, seq, key))
				}
			}
			records = append(records, record{Experiment: "E13", Arch: r.Arch.Label(), Function: "GibKompNr",
				Step: r.Mode, Calls: r.N, PaperMS: paperMS(r.Elapsed)})
		}
	}
	if run("dop") {
		any = true
		section("E9 - Intra-query parallelism: ParallelApply DOP sweep (extension)")
		list, err := parseDOPs(*dops)
		if err != nil {
			fail(err)
		}
		rows, err := h.ParallelLateral(context.Background(), list)
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderDOP(rows))
		for _, r := range rows {
			records = append(records, record{Experiment: "E9", Arch: r.Arch.Label(), Function: r.Function, DOP: r.DOP, PaperMS: paperMS(r.Elapsed)})
		}
	}
	if run("spans") {
		any = true
		section("E10 - Fig. 6 from live spans (extension)")
		results, err := h.Fig6FromSpans(context.Background())
		if err != nil {
			fail(err)
		}
		for _, r := range results {
			fmt.Println(benchharn.RenderSpanFig6(r))
			if !r.Match {
				fail(fmt.Errorf("E10: trace-derived breakdown for %s disagrees with the Recorder", r.Arch))
			}
			for _, s := range r.Trace.Steps {
				records = append(records, record{Experiment: "E10", Arch: r.Arch, Function: "GetNoSuppComp", Step: s.Name, PaperMS: paperMS(s.Total)})
			}
			if *traceOut != "" {
				if err := os.MkdirAll(*traceOut, 0o755); err != nil {
					fail(err)
				}
				data, err := json.MarshalIndent(r.Data, "", "  ")
				if err != nil {
					fail(err)
				}
				path := filepath.Join(*traceOut, fmt.Sprintf("E10_spans_%s.json", r.ArchLabel))
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					fail(err)
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
	}
	if run("faults") {
		any = true
		section("E12 - Fault tolerance: retries, deadlines, circuit breaking (extension)")
		report, err := h.Faults(context.Background(), *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderFaults(report))
		for _, r := range report.Rows {
			step := fmt.Sprintf("rate=%.0f%%", r.ErrorRate*100)
			records = append(records,
				record{Experiment: "E12", Function: r.Function, Step: step + "/unprotected", Calls: r.UnprotectedOK, PaperMS: r.UnprotectedRate() * 100},
				record{Experiment: "E12", Function: r.Function, Step: step + "/protected", Calls: r.ProtectedOK, PaperMS: r.ProtectedRate() * 100})
			// The acceptance bar of the experiment: at a 20% transient error
			// rate the protected stack keeps >= 99% statement success.
			if r.ErrorRate >= 0.20 && r.ProtectedRate() < 0.99 {
				fail(fmt.Errorf("E12: protected success %.1f%% < 99%% for %s at %.0f%% error rate",
					r.ProtectedRate()*100, r.Function, r.ErrorRate*100))
			}
		}
		if !report.HangIsTimeout {
			fail(fmt.Errorf("E12: hung system did not resolve to ErrTimeout"))
		}
		if !report.BreakerTripped || !report.ShedIsOpenErr || !report.ShedWithoutCall {
			fail(fmt.Errorf("E12: breaker demonstration failed (tripped=%v openErr=%v uncalled=%v)",
				report.BreakerTripped, report.ShedIsOpenErr, report.ShedWithoutCall))
		}
		if !report.PartialFlagged {
			fail(fmt.Errorf("E12: optional branch did not degrade to a partial result"))
		}
	}
	if run("stats") {
		any = true
		section("E14 - Statement-statistics warehouse accuracy (extension)")
		for _, arch := range []fedfunc.Arch{fedfunc.ArchWfMS, fedfunc.ArchUDTF} {
			rep, err := h.StatementStats(context.Background(), arch, 12)
			if err != nil {
				fail(err)
			}
			fmt.Println(benchharn.RenderStatementStats(rep))
			// The acceptance bars of the experiment: the warehouse is an
			// exact ledger — one fingerprint for one statement shape, and
			// calls, rows, RPCs, workflow instances, and total simulated
			// time equal to the stack's own counters and the serving
			// metadata — while the quantile sketch's p99 may sit at most
			// one log bucket above the exact p99.
			if !rep.ExactTotals() {
				fail(fmt.Errorf("E14 %s: warehouse totals diverge from the references (fingerprints=%d calls=%d/%d rows=%d/%d rpcs=%d/%d instances=%d/%d paper=%v/%v)",
					rep.Arch, rep.Fingerprints, rep.Calls, rep.Statements, rep.Rows, rep.RefRows,
					rep.RPCs, rep.RefRPCs, rep.Instances, rep.RefInstances, rep.Paper, rep.RefPaper))
			}
			if !rep.P99WithinOneBucket() {
				fail(fmt.Errorf("E14 %s: sketch p99 %.3fms outside [%.3fms, %.3fms]",
					rep.Arch, rep.P99MS, rep.ExactP99MS, rep.ExactP99MS*stats.SketchGamma))
			}
			records = append(records,
				record{Experiment: "E14", Arch: rep.Arch, Function: "GetSuppQual", Step: "total", Calls: rep.Statements, PaperMS: paperMS(rep.Paper)},
				record{Experiment: "E14", Arch: rep.Arch, Function: "GetSuppQual", Step: "p99", Calls: rep.Statements, PaperMS: rep.P99MS})
		}
	}
	if run("audit") {
		any = true
		section("E15 - Audit journal accuracy and SLO burn rates (extension)")
		for _, arch := range []fedfunc.Arch{fedfunc.ArchWfMS, fedfunc.ArchUDTF} {
			rep, err := h.AuditAccuracy(context.Background(), arch, 12)
			if err != nil {
				fail(err)
			}
			fmt.Println(benchharn.RenderAuditAccuracy(rep))
			// The accuracy bar: the journal's wide events are a third exact
			// book over the workload — their sums equal the stack's wire
			// counters and the warehouse's totals, and every claimed
			// workflow instance has its own wf_instance event.
			if !rep.Exact() {
				fail(fmt.Errorf("E15 %s: journal diverges from the references (stmts=%d/%d rows=%d/%d rpcs=%d/%d/%d instances=%d/%d/%d instEvents=%d paper=%v/%v)",
					rep.Arch, rep.JnlStatements, rep.Statements, rep.JnlRows, rep.WhRows,
					rep.JnlRPCs, rep.RefRPCs, rep.WhRPCs, rep.JnlInstances, rep.RefInstances, rep.WhInstances,
					rep.JnlInstEvents, rep.JnlPaper, rep.WhPaper))
			}
			records = append(records,
				record{Experiment: "E15", Arch: rep.Arch, Function: "GetSuppQual", Step: "total", Calls: rep.Statements, PaperMS: paperMS(rep.JnlPaper)})
		}
		burn, err := h.AuditBurn(context.Background(), *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(benchharn.RenderAuditBurn(burn))
		// The burn bar: the fault burst is loud in the 5-minute window
		// (burn > 1.0) but the hour of healthy traffic keeps the 1-hour
		// window under budget (burn < 1.0) — the multi-window shape that
		// separates an incident from an SLO miss.
		if !burn.BurstDetected() {
			fail(fmt.Errorf("E15: burn shape wrong (5m=%.2f want >1, 1h=%.2f want <1)",
				burn.Window("5m").AvailBurn, burn.Window("1h").AvailBurn))
		}
		records = append(records,
			record{Experiment: "E15", Arch: "wfms", Function: "GetSuppQual", Step: "burn_5m", Calls: burn.Window("5m").Statements, PaperMS: burn.Window("5m").AvailBurn},
			record{Experiment: "E15", Arch: "wfms", Function: "GetSuppQual", Step: "burn_1h", Calls: burn.Window("1h").Statements, PaperMS: burn.Window("1h").AvailBurn})
	}
	if run("serve") {
		any = true
		section("E16 - High-concurrency serving: sessions, admission, pipelining (extension)")
		rep, err := h.ServingSweep(context.Background(), []int{100, 1000, 10000}, 4)
		if err != nil {
			fail(err)
		}
		fmt.Print(benchharn.RenderServing(rep))
		// The acceptance bars of the experiment: the bookkeeping is exact
		// (every generated statement either completed or shed), at 10 000
		// sessions the bounded queue sheds rather than collapsing, every
		// shed is the typed resil.ErrAppSysUnavailable the live admission
		// controller produces, and the pipelined window strictly beats the
		// serialized one on p99 at a scale without admission pressure —
		// the protocol benefit isolated from shedding.
		for _, r := range rep.Rows {
			if got, want := r.Completed+r.Shed, r.Sessions*r.Cfg.Requests; got != want {
				fail(fmt.Errorf("E16: %d sessions account for %d statements, want %d", r.Sessions, got, want))
			}
			for _, e := range r.Errs {
				if !errors.Is(e, resil.ErrAppSysUnavailable) {
					fail(fmt.Errorf("E16: shed error is not ErrAppSysUnavailable: %w", e))
				}
			}
			records = append(records,
				record{Experiment: "E16", Function: benchharn.ServingFunction, Step: "p50", Calls: r.Sessions, PaperMS: paperMS(r.P50)},
				record{Experiment: "E16", Function: benchharn.ServingFunction, Step: "p99", Calls: r.Sessions, PaperMS: paperMS(r.P99)},
				record{Experiment: "E16", Function: benchharn.ServingFunction, Step: "throughput", Calls: r.Sessions, PaperMS: r.Throughput})
		}
		if last := rep.Rows[len(rep.Rows)-1]; last.Shed == 0 {
			fail(fmt.Errorf("E16: no statements shed at %d sessions — admission control is not bounding the queue", last.Sessions))
		}
		if rep.Pipelined.P99 >= rep.Serialized.P99 {
			fail(fmt.Errorf("E16: pipelined p99 %v not below serialized p99 %v", rep.Pipelined.P99, rep.Serialized.P99))
		}
		records = append(records,
			record{Experiment: "E16", Function: benchharn.ServingFunction, Step: "serialized_p99", Calls: rep.Serialized.Cfg.Sessions, PaperMS: paperMS(rep.Serialized.P99)},
			record{Experiment: "E16", Function: benchharn.ServingFunction, Step: "pipelined_p99", Calls: rep.Pipelined.Cfg.Sessions, PaperMS: paperMS(rep.Pipelined.P99)})
	}
	if !any {
		fail(fmt.Errorf("unknown experiment %q", *exp))
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fail(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("\npaperbench: wrote %d records to %s\n", len(records), *jsonPath)
	}
}

func parseDOPs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -dops value %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func section(title string) {
	fmt.Println()
	fmt.Println("=== " + title + " ===")
	fmt.Println()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}
