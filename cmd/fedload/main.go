// Command fedload is the load generator for a running fedserver: it opens
// many concurrent sessions over the framed multiplexed protocol, drives
// pipelined statements through each, and reports latency percentiles,
// throughput, and shed counts.
//
//	fedload -addr 127.0.0.1:4711 -sessions 16 -requests 8
//	fedload -sessions 100 -pipeline 1              # serialized round-trips
//	fedload -tenant batch -rate 50                 # open loop at 50 stmts/s
//	fedload -json summary.json
//	fedload -sim -sessions 10000                   # deterministic simulation
//
// In closed-loop mode (the default) each session keeps its pipeline
// window full: up to -pipeline statements in flight per session, the next
// sent as soon as one completes. With -rate, the generator switches to an
// open loop: statements arrive at the given aggregate rate regardless of
// completions — the mode that actually exposes an overloaded server,
// because arrivals do not slow down when the server does. Statements shed
// by the server's admission controller (the typed "unavailable" error)
// are counted separately and do not fail the run; any other error does.
//
// With -sim, no server is contacted: the same deterministic serving
// simulation behind paperbench -exp serve runs on the virtual clock with
// the given sessions/requests/pipeline and admission bounds, so capacity
// questions ("what sheds at 10k sessions under this policy?") answer
// identically on every machine.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fedwf/internal/benchharn"
	"fedwf/internal/fdbs"
	"fedwf/internal/resil"
	"fedwf/internal/rpc"
	"fedwf/internal/simlat"
)

// summary is the run's result, printed as text or as -json.
type summary struct {
	Mode       string  `json:"mode"` // "wall" or "sim"
	Sessions   int     `json:"sessions"`
	Requests   int     `json:"requests"` // per session
	Pipeline   int     `json:"pipeline"`
	Completed  int     `json:"completed"`
	Shed       int     `json:"shed"`
	Errors     int     `json:"errors"` // non-shed failures
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	Throughput float64 `json:"throughput_per_s"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:4711", "fedserver address")
	sessions := flag.Int("sessions", 8, "concurrent sessions")
	requests := flag.Int("requests", 8, "statements per session")
	pipeline := flag.Int("pipeline", 4, "statements in flight per session (1 = serialized round-trips)")
	tenant := flag.String("tenant", "", "tenant the sessions are accounted under")
	stmt := flag.String("stmt", "SELECT Q.Qual FROM TABLE (GetSuppQual('Supplier3')) AS Q", "statement every session repeats")
	rate := flag.Float64("rate", 0, "open-loop aggregate arrival rate in statements/s (0 = closed loop)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-statement wall deadline")
	jsonPath := flag.String("json", "", "write the summary as JSON to this path")
	sim := flag.Bool("sim", false, "run the deterministic serving simulation instead of contacting a server")
	simConcurrent := flag.Int("sim-max-concurrent", 128, "with -sim: admission concurrency bound")
	simQueue := flag.Int("sim-queue-depth", 512, "with -sim: admission queue depth")
	flag.Parse()

	if *sessions <= 0 || *requests <= 0 || *pipeline <= 0 {
		fail(errors.New("-sessions, -requests and -pipeline must be positive"))
	}
	var sum summary
	if *sim {
		sum = runSim(*sessions, *requests, *pipeline, *simConcurrent, *simQueue)
	} else {
		sum = runWall(*addr, *tenant, *stmt, *sessions, *requests, *pipeline, *rate, *timeout)
	}

	fmt.Printf("fedload: %s mode: %d sessions x %d stmts, pipeline %d\n", sum.Mode, sum.Sessions, sum.Requests, sum.Pipeline)
	fmt.Printf("fedload: completed %d, shed %d, errors %d\n", sum.Completed, sum.Shed, sum.Errors)
	fmt.Printf("fedload: p50 %.3f ms, p99 %.3f ms, %.1f stmts/s over %.1f ms\n",
		sum.P50MS, sum.P99MS, sum.Throughput, sum.ElapsedMS)
	if *jsonPath != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("fedload: wrote %s\n", *jsonPath)
	}
	if sum.Errors > 0 {
		fail(fmt.Errorf("%d statements failed with non-shed errors", sum.Errors))
	}
}

// runWall drives a live server and measures wall-clock latencies.
func runWall(addr, tenant, stmt string, sessions, requests, pipeline int, rate float64, timeout time.Duration) summary {
	sum := summary{Mode: "wall", Sessions: sessions, Requests: requests, Pipeline: pipeline}
	var dialOpts []fdbs.ClientOption
	if tenant != "" {
		dialOpts = append(dialOpts, fdbs.WithTenant(tenant))
	}
	clients := make([]*fdbs.Client, sessions)
	for i := range clients {
		c, err := fdbs.DialClient(addr, dialOpts...)
		if err != nil {
			fail(fmt.Errorf("dial session %d: %w", i, err))
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	// Open loop: a central ticker releases statements at the aggregate
	// rate; closed loop: every window slot fires as soon as it frees.
	var tickets chan struct{}
	if rate > 0 {
		tickets = make(chan struct{})
		interval := time.Duration(float64(time.Second) / rate)
		go func() {
			tk := time.NewTicker(interval)
			defer tk.Stop()
			for i := 0; i < sessions*requests; i++ {
				<-tk.C
				tickets <- struct{}{}
			}
			close(tickets)
		}()
	}

	var completed, shed, failures atomic.Int64
	var mu sync.Mutex
	var latencies []time.Duration
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		client := clients[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			var issued atomic.Int64
			var swg sync.WaitGroup
			for w := 0; w < pipeline; w++ {
				swg.Add(1)
				go func() {
					defer swg.Done()
					for {
						if issued.Add(1) > int64(requests) {
							return
						}
						if tickets != nil {
							if _, ok := <-tickets; !ok {
								return
							}
						}
						ctx, cancel := context.WithTimeout(context.Background(), timeout)
						t0 := time.Now()
						_, err := client.Exec(ctx, stmt)
						d := time.Since(t0)
						cancel()
						switch {
						case err == nil:
							completed.Add(1)
							mu.Lock()
							latencies = append(latencies, d)
							mu.Unlock()
						case errors.Is(err, resil.ErrAppSysUnavailable):
							shed.Add(1)
						default:
							failures.Add(1)
						}
					}
				}()
			}
			swg.Wait()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum.Completed = int(completed.Load())
	sum.Shed = int(shed.Load())
	sum.Errors = int(failures.Load())
	sum.P50MS, sum.P99MS = percentilesMS(latencies)
	sum.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	if elapsed > 0 {
		sum.Throughput = float64(sum.Completed) / elapsed.Seconds()
	}
	return sum
}

// runSim runs the deterministic serving simulation on the virtual clock.
func runSim(sessions, requests, pipeline, maxConcurrent, queueDepth int) summary {
	h, err := benchharn.New()
	if err != nil {
		fail(err)
	}
	service, err := servingService(h)
	if err != nil {
		fail(err)
	}
	res := benchharn.SimulateServing(benchharn.ServingConfig{
		Sessions: sessions,
		Requests: requests,
		Window:   pipeline,
		Service:  service,
		GenGap:   service / 2,
		Ramp:     1000 * simlat.PaperMS,
		Policy:   rpc.AdmissionPolicy{MaxConcurrent: maxConcurrent, QueueDepth: queueDepth},
	})
	sum := summary{Mode: "sim", Sessions: sessions, Requests: requests, Pipeline: pipeline,
		Completed: res.Completed, Shed: res.Shed,
		P50MS:      float64(res.P50) / float64(simlat.PaperMS),
		P99MS:      float64(res.P99) / float64(simlat.PaperMS),
		Throughput: res.Throughput,
		ElapsedMS:  float64(res.Makespan) / float64(simlat.PaperMS),
	}
	return sum
}

// servingService measures the simulation's per-statement service time hot
// from a real stack, like paperbench -exp serve does.
func servingService(h *benchharn.Harness) (time.Duration, error) {
	rep, err := h.ServingSweep(context.Background(), []int{1}, 1)
	if err != nil {
		return 0, err
	}
	return rep.Service, nil
}

// percentilesMS returns the p50 and p99 of the sample in milliseconds.
func percentilesMS(latencies []time.Duration) (p50, p99 float64) {
	if len(latencies) == 0 {
		return 0, 0
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p50 = float64(latencies[(len(latencies)-1)*50/100]) / float64(time.Millisecond)
	p99 = float64(latencies[(len(latencies)-1)*99/100]) / float64(time.Millisecond)
	return p50, p99
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fedload:", err)
	os.Exit(1)
}
