// Command fedsql is the interactive SQL client for a running fedserver:
//
//	fedsql -addr 127.0.0.1:4711
//	fedsql -addr 127.0.0.1:4711 -c "SELECT * FROM TABLE (BuySuppComp(4, 'washer')) AS R"
//
// In interactive mode, statements end with a semicolon; \q quits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"fedwf/internal/fdbs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4711", "fedserver address")
	command := flag.String("c", "", "execute one statement and exit")
	dop := flag.Int("dop", 0, "send SET PARALLELISM <n> before any statement (0 = leave server default)")
	flag.Parse()

	client, err := fdbs.DialClient(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedsql:", err)
		os.Exit(1)
	}
	defer client.Close()

	if *dop != 0 {
		if _, err := client.Exec(fmt.Sprintf("SET PARALLELISM %d", *dop)); err != nil {
			fmt.Fprintln(os.Stderr, "fedsql:", err)
			os.Exit(1)
		}
	}

	if *command != "" {
		if !execute(client, *command) {
			os.Exit(1)
		}
		return
	}

	fmt.Println("fedsql: connected to", *addr, "- terminate statements with ';', \\q quits")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "fedsql> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == `\q` || trimmed == "quit" || trimmed == "exit") {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(strings.TrimSpace(buf.String()), ";") {
			stmt := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			prompt = "fedsql> "
			if strings.TrimSpace(stmt) != "" {
				execute(client, stmt)
			}
		} else {
			prompt = "   ...> "
		}
	}
}

func execute(client *fdbs.Client, sql string) bool {
	tab, err := client.Exec(sql)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return false
	}
	fmt.Print(tab.String())
	fmt.Printf("(%d rows)\n", tab.Len())
	return true
}
