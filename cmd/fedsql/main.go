// Command fedsql is the interactive SQL client for a running fedserver:
//
//	fedsql -addr 127.0.0.1:4711
//	fedsql -addr 127.0.0.1:4711 -c "SELECT * FROM TABLE (BuySuppComp(4, 'washer')) AS R"
//	fedsql -addr 127.0.0.1:4711 -timing -c "EXPLAIN ANALYZE SELECT ..."
//
// In interactive mode, statements end with a semicolon; \q quits and
// \timing toggles per-statement timing (the server's simulated paper
// latency, the wall round-trip, and function-cache counters).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fedwf/internal/fdbs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4711", "fedserver address")
	command := flag.String("c", "", "execute one statement and exit")
	dop := flag.Int("dop", 0, "send SET PARALLELISM <n> before any statement (0 = leave server default)")
	timing := flag.Bool("timing", false, "start with per-statement timing on (\\timing toggles it)")
	flag.Parse()

	client, err := fdbs.DialClient(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedsql:", err)
		os.Exit(1)
	}
	defer client.Close()

	if *dop != 0 {
		if _, err := client.Exec(fmt.Sprintf("SET PARALLELISM %d", *dop)); err != nil {
			fmt.Fprintln(os.Stderr, "fedsql:", err)
			os.Exit(1)
		}
	}

	showTiming := *timing

	if *command != "" {
		if !execute(client, *command, showTiming) {
			os.Exit(1)
		}
		return
	}

	fmt.Println("fedsql: connected to", *addr, `- terminate statements with ';', \q quits, \timing toggles timing`)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "fedsql> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == `\q` || trimmed == "quit" || trimmed == "exit") {
			return
		}
		if buf.Len() == 0 && trimmed == `\timing` {
			showTiming = !showTiming
			if showTiming {
				fmt.Println("Timing is on.")
			} else {
				fmt.Println("Timing is off.")
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(strings.TrimSpace(buf.String()), ";") {
			stmt := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			prompt = "fedsql> "
			if strings.TrimSpace(stmt) != "" {
				execute(client, stmt, showTiming)
			}
		} else {
			prompt = "   ...> "
		}
	}
}

func execute(client *fdbs.Client, sql string, timing bool) bool {
	start := time.Now()
	tab, meta, err := client.ExecTimed(sql)
	roundTrip := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return false
	}
	fmt.Print(tab.String())
	fmt.Printf("(%d rows)\n", tab.Len())
	if timing {
		fmt.Print(timingLine(meta, roundTrip))
	}
	return true
}

// timingLine renders the \timing footer from the server's per-statement
// metadata; absent metadata (an old server) falls back to the client-side
// round trip alone.
func timingLine(meta map[string]string, roundTrip time.Duration) string {
	rt := float64(roundTrip) / float64(time.Millisecond)
	if meta == nil {
		return fmt.Sprintf("Time: round-trip %.3f ms\n", rt)
	}
	line := fmt.Sprintf("Time: paper %s ms, server wall %s ms, round-trip %.3f ms",
		orDash(meta["paper_ms"]), orDash(meta["wall_ms"]), rt)
	if meta["cache_hits"] != "" || meta["cache_misses"] != "" || meta["cache_coalesced"] != "" {
		line += fmt.Sprintf(" (cache hits=%s misses=%s coalesced=%s)",
			orDash(meta["cache_hits"]), orDash(meta["cache_misses"]), orDash(meta["cache_coalesced"]))
	}
	return line + "\n"
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
