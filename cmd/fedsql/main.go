// Command fedsql is the interactive SQL client for a running fedserver:
//
//	fedsql -addr 127.0.0.1:4711
//	fedsql -addr 127.0.0.1:4711 -c "SELECT * FROM TABLE (BuySuppComp(4, 'washer')) AS R"
//	fedsql -addr 127.0.0.1:4711 -timing -c "EXPLAIN ANALYZE SELECT ..."
//
// In interactive mode, statements end with a semicolon; \q quits,
// \timing toggles per-statement timing (the server's simulated paper
// latency, the wall round-trip, and function-cache counters), \trace
// on|off requests distributed tracing for the following statements,
// \lasttrace pretty-prints the last traced statement's cross-process
// waterfall (client, rpc, fdbs, engine, UDTF, controller, WfMS and
// application-system spans stitched into one tree), and \stats [n] lists
// the server's top n statements by total simulated time from the
// fed_stat_statements warehouse (default 10). \audit [n] lists the newest
// n audit-journal events (default 20) from fed_audit_events, and
// \wf <instance> shows one workflow instance's per-activity history from
// fed_wf_activities (instance ids come from fed_wf_instances or \audit).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"fedwf/internal/fdbs"
	"fedwf/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4711", "fedserver address")
	command := flag.String("c", "", "execute one statement and exit")
	dop := flag.Int("dop", 0, "send SET PARALLELISM <n> before any statement (0 = leave server default)")
	timing := flag.Bool("timing", false, "start with per-statement timing on (\\timing toggles it)")
	trace := flag.Bool("trace", false, "start with distributed tracing on (\\trace toggles it)")
	tenant := flag.String("tenant", "", "tenant the session is accounted under (server-side quotas and metrics key on it)")
	flag.Parse()

	var dialOpts []fdbs.ClientOption
	if *tenant != "" {
		dialOpts = append(dialOpts, fdbs.WithTenant(*tenant))
	}
	client, err := fdbs.DialClient(*addr, dialOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedsql:", err)
		os.Exit(1)
	}
	defer client.Close()

	if *dop != 0 {
		if _, err := client.Exec(context.Background(), fmt.Sprintf("SET PARALLELISM %d", *dop)); err != nil {
			fmt.Fprintln(os.Stderr, "fedsql:", err)
			os.Exit(1)
		}
	}

	st := &state{timing: *timing, trace: *trace}

	if *command != "" {
		ok := execute(client, *command, st)
		if st.trace && st.lastTrace != "" {
			fmt.Print(st.lastTrace)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	fmt.Println("fedsql: connected to", *addr, `- terminate statements with ';', \q quits, \timing toggles timing, \trace traces, \lasttrace shows the last trace, \stats [n] shows the top statements by total time, \audit [n] the newest journal events, \wf <instance> one instance's activity history`)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "fedsql> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == `\q` || trimmed == "quit" || trimmed == "exit") {
			return
		}
		if buf.Len() == 0 && trimmed == `\timing` {
			st.timing = !st.timing
			if st.timing {
				fmt.Println("Timing is on.")
			} else {
				fmt.Println("Timing is off.")
			}
			continue
		}
		if buf.Len() == 0 && (trimmed == `\trace` || trimmed == `\trace on` || trimmed == `\trace off`) {
			switch trimmed {
			case `\trace on`:
				st.trace = true
			case `\trace off`:
				st.trace = false
			default:
				st.trace = !st.trace
			}
			if st.trace {
				fmt.Println("Tracing is on: the next statements request sampling and return their waterfall.")
			} else {
				fmt.Println("Tracing is off.")
			}
			continue
		}
		if buf.Len() == 0 && (trimmed == `\stats` || strings.HasPrefix(trimmed, `\stats `)) {
			n := 10
			if arg := strings.TrimSpace(strings.TrimPrefix(trimmed, `\stats`)); arg != "" {
				parsed, err := strconv.Atoi(arg)
				if err != nil || parsed <= 0 {
					fmt.Fprintf(os.Stderr, "error: \\stats takes a positive row count, got %q\n", arg)
					continue
				}
				n = parsed
			}
			execute(client, statsQuery(n), st)
			continue
		}
		if buf.Len() == 0 && (trimmed == `\audit` || strings.HasPrefix(trimmed, `\audit `)) {
			n := 20
			if arg := strings.TrimSpace(strings.TrimPrefix(trimmed, `\audit`)); arg != "" {
				parsed, err := strconv.Atoi(arg)
				if err != nil || parsed <= 0 {
					fmt.Fprintf(os.Stderr, "error: \\audit takes a positive row count, got %q\n", arg)
					continue
				}
				n = parsed
			}
			execute(client, auditQuery(n), st)
			continue
		}
		if buf.Len() == 0 && (trimmed == `\wf` || strings.HasPrefix(trimmed, `\wf `)) {
			inst := strings.TrimSpace(strings.TrimPrefix(trimmed, `\wf`))
			if inst == "" {
				fmt.Fprintln(os.Stderr, `error: \wf takes a workflow instance id (see fed_wf_instances or \audit)`)
				continue
			}
			execute(client, wfQuery(inst), st)
			continue
		}
		if buf.Len() == 0 && trimmed == `\lasttrace` {
			if st.lastTrace == "" {
				fmt.Println("No trace captured yet; turn tracing on with \trace and run a statement.")
			} else {
				fmt.Print(st.lastTrace)
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(strings.TrimSpace(buf.String()), ";") {
			stmt := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			prompt = "fedsql> "
			if strings.TrimSpace(stmt) != "" {
				execute(client, stmt, st)
			}
		} else {
			prompt = "   ...> "
		}
	}
}

// statsQuery is the \stats meta-command's SQL: the top-n statements by
// total simulated time from the server's statement-statistics warehouse.
func statsQuery(n int) string {
	return fmt.Sprintf("SELECT Fingerprint, Calls, Errors, Total_MS, Mean_MS, P99_MS, Query FROM fed_stat_statements ORDER BY Total_MS DESC LIMIT %d", n)
}

// auditQuery is the \audit meta-command's SQL: the newest n events from
// the server's audit journal. DESC puts the newest events first — the
// shape the console wants.
func auditQuery(n int) string {
	return fmt.Sprintf("SELECT Seq, Kind, Func, Instance, Node, Detail, RowIdx, Rows, Started_VT, Dur_MS, Err FROM fed_audit_events ORDER BY Seq DESC LIMIT %d", n)
}

// wfQuery is the \wf meta-command's SQL: one workflow instance's
// per-activity history, oldest transition first.
func wfQuery(instance string) string {
	return fmt.Sprintf("SELECT Node, Event, RowIdx, Rows, At_VT FROM fed_wf_activities WHERE Instance = '%s' ORDER BY At_VT",
		strings.ReplaceAll(instance, "'", "''"))
}

// state holds the REPL toggles and the last captured trace rendering.
type state struct {
	timing    bool
	trace     bool
	lastTrace string
}

func execute(client *fdbs.Client, sql string, st *state) bool {
	start := time.Now()
	var opts []fdbs.ExecOption
	if st.trace {
		opts = append(opts, fdbs.WithTrace())
	}
	res, err := client.Exec(context.Background(), sql, opts...)
	tab, meta := res.Table, res.Meta
	if st.trace {
		st.lastTrace = renderTrace(res.Trace, meta)
	}
	roundTrip := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		if st.trace && st.lastTrace != "" {
			fmt.Print(st.lastTrace)
		}
		return false
	}
	fmt.Print(tab.String())
	fmt.Printf("(%d rows)\n", tab.Len())
	if st.timing {
		fmt.Print(timingLine(meta, roundTrip))
	}
	if st.trace {
		if id := meta[obs.MetaTraceID]; id != "" {
			fmt.Printf("Trace %s captured (\\lasttrace shows the waterfall; /traces/%s on the server's metrics listener).\n", id, id)
		}
	}
	return true
}

// renderTrace builds the \lasttrace output: a waterfall plus the indented
// span tree of the statement's cross-process trace.
func renderTrace(root *obs.Span, meta map[string]string) string {
	if root == nil {
		return ""
	}
	d := obs.SnapshotSpan(root)
	var b strings.Builder
	if id := meta[obs.MetaTraceID]; id != "" {
		fmt.Fprintf(&b, "trace %s\n", id)
	}
	b.WriteString(obs.Waterfall(d))
	b.WriteString(obs.RenderData(d))
	return b.String()
}

// timingLine renders the \timing footer from the server's per-statement
// metadata; absent metadata (an old server) falls back to the client-side
// round trip alone.
func timingLine(meta map[string]string, roundTrip time.Duration) string {
	rt := float64(roundTrip) / float64(time.Millisecond)
	if meta == nil {
		return fmt.Sprintf("Time: round-trip %.3f ms\n", rt)
	}
	line := fmt.Sprintf("Time: paper %s ms, server wall %s ms, round-trip %.3f ms",
		orDash(meta["paper_ms"]), orDash(meta["wall_ms"]), rt)
	if meta["cache_hits"] != "" || meta["cache_misses"] != "" || meta["cache_coalesced"] != "" {
		line += fmt.Sprintf(" (cache hits=%s misses=%s coalesced=%s)",
			orDash(meta["cache_hits"]), orDash(meta["cache_misses"]), orDash(meta["cache_coalesced"]))
	}
	return line + "\n"
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
