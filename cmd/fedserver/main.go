// Command fedserver runs the integration server: the FDBS with the
// federated functions of the purchasing scenario registered through the
// chosen architecture, listening for SQL over the client protocol.
//
//	fedserver -addr 127.0.0.1:4711 -arch wfms
//	fedserver -arch udtf -direct
//	fedserver -config server.json
//	fedserver -config server.json -metrics-addr 127.0.0.1:9090
//	fedserver -max-concurrent-per-tenant 8 -admission-queue-depth 32
//
// Every knob lives in one validated fdbs.ServerConfig. It hydrates from
// a JSON file given with -config, from the command-line flags, or both —
// flags override the file, so a deployment config can be overridden ad
// hoc. An unknown key in the JSON file is an error, not a silent default.
//
// The listener speaks both wire protocols: new clients negotiate the
// framed multiplexed protocol (pipelined statements, per-session tenant
// accounting, typed errors), old clients fall through to the serialized
// gob transport. The -max-sessions-per-tenant, -max-concurrent-per-tenant
// and -admission-queue-depth flags bound what one tenant may hold open
// and in flight; requests beyond the bounded queue are shed immediately
// with a typed "unavailable" error instead of queueing without bound.
// Session and admission traffic surfaces as fedwf_sessions_* and
// fedwf_admission_* on /metrics and as session/shed events in the audit
// journal. Generate load with the fedload command.
//
// The -stmt-timeout-ms, -retry-*, and -breaker-* flags configure the
// fault-tolerance layer; -partial-results lets optional lateral branches
// degrade to NULL padding while a system's circuit is open. With
// -metrics-addr, a second HTTP listener serves /metrics, /healthz, the
// trace API (/traces), the statistics warehouse (/stats), and the audit
// journal (/audit, /wf/instances, /slo). -pprof mounts net/http/pprof on
// the same listener. SIGINT/SIGTERM trigger a graceful shutdown that
// drains in-flight statements before severing connections.
//
// Connect with the fedsql command.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"fedwf/internal/fdbs"
	"fedwf/internal/obs"
	"fedwf/internal/simlat"
)

// configPath pre-scans the arguments for -config/--config so the file
// loads before flag parsing and flags override its values.
func configPath(args []string) string {
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "--" {
			return ""
		}
		name, val, eq := a, "", false
		if j := strings.IndexByte(a, '='); j >= 0 {
			name, val, eq = a[:j], a[j+1:], true
		}
		if name != "-config" && name != "--config" {
			continue
		}
		if eq {
			return val
		}
		if i+1 < len(args) {
			return args[i+1]
		}
	}
	return ""
}

func main() {
	cfg := fdbs.DefaultServerConfig()
	if path := configPath(os.Args[1:]); path != "" {
		if err := cfg.LoadFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "fedserver:", err)
			os.Exit(1)
		}
	}
	flag.String("config", "", "JSON file with a ServerConfig; flags override its values")
	cfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "fedserver:", err)
		os.Exit(1)
	}

	engineCfg, err := cfg.BuildConfig()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedserver:", err)
		os.Exit(1)
	}
	if engineCfg.Faults != nil {
		fmt.Printf("fedserver: fault injection on (seed %d, error rate %.0f%%)\n", cfg.FaultSeed, cfg.FaultRate*100)
	}
	srv, err := fdbs.NewServer(engineCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedserver:", err)
		os.Exit(1)
	}
	cfg.Apply(srv)
	if cfg.DOP != 0 {
		fmt.Printf("fedserver: intra-query parallelism %d\n", srv.Engine().Parallelism())
	}
	if cfg.BatchSize > 1 {
		fmt.Printf("fedserver: set-oriented federated calls, batch size %d\n", srv.Engine().BatchSize())
	}
	if cfg.SlowQueryMS > 0 {
		srv.SetSlowQueryLog(obs.NewSlowQueryLog(os.Stderr, cfg.SlowThreshold()))
		fmt.Printf("fedserver: slow-query log at %.1f paper ms\n", cfg.SlowQueryMS)
	}
	if cfg.SLOAvailability > 0 || cfg.SLOLatencyMS > 0 {
		obj := srv.Journal().Objectives()
		fmt.Printf("fedserver: SLOs: availability %.4f, latency %.0f paper ms\n",
			obj.Availability, float64(obj.Latency)/float64(simlat.PaperMS))
	}
	var auditFile *os.File
	if cfg.AuditOut != "" {
		f, err := os.Create(cfg.AuditOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedserver:", err)
			os.Exit(1)
		}
		auditFile = f
		srv.Journal().SetSink(f)
		fmt.Printf("fedserver: audit journal mirrored to %s\n", cfg.AuditOut)
	}
	bound, err := srv.Listen(cfg.Addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedserver:", err)
		os.Exit(1)
	}

	var metricsSrv *http.Server
	if cfg.MetricsAddr != "" {
		mux := obs.MetricsMux(srv.MetricsRegistry())
		srv.Collector().Register(mux)
		srv.Stats().Register(mux)
		srv.Journal().Register(mux)
		if cfg.Pprof {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			fmt.Printf("fedserver: pprof on http://%s/debug/pprof/\n", cfg.MetricsAddr)
		}
		metricsSrv = &http.Server{Addr: cfg.MetricsAddr, Handler: mux}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "fedserver: metrics:", err)
			}
		}()
		fmt.Printf("fedserver: metrics on http://%s/metrics, traces on http://%s/traces, stats on http://%s/stats/statements\n", cfg.MetricsAddr, cfg.MetricsAddr, cfg.MetricsAddr)
	}

	if cfg.RetryAttempts > 1 || cfg.BreakerFailures > 0 || cfg.StmtTimeoutMS > 0 {
		fmt.Printf("fedserver: fault tolerance: retries=%d, breaker-failures=%d, stmt-timeout=%.0fms, partial-results=%v\n",
			cfg.RetryAttempts, cfg.BreakerFailures, cfg.StmtTimeoutMS, cfg.PartialResults)
	}
	if cfg.MaxSessionsPerTenant > 0 || cfg.MaxConcurrentPerTenant > 0 {
		fmt.Printf("fedserver: admission: sessions/tenant=%d, concurrent/tenant=%d, queue-depth=%d\n",
			cfg.MaxSessionsPerTenant, cfg.MaxConcurrentPerTenant, cfg.AdmissionQueueDepth)
	}
	fmt.Printf("fedserver: %s listening on %s (controller: %v)\n", cfg.ArchValue(), bound, !cfg.Direct)
	fmt.Println("fedserver: application systems:", strings.Join(srv.Apps().Systems(), ", "))
	fmt.Println("fedserver: federated functions registered; connect with fedsql -addr", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nfedserver: shutting down (draining in-flight statements)")
	failed := false
	if err := srv.Shutdown(cfg.Grace()); err != nil {
		fmt.Fprintln(os.Stderr, "fedserver:", err)
		failed = true
	}
	if auditFile != nil {
		// The drain hook flushed the journal's buffer; sync and close the
		// file itself.
		if err := auditFile.Sync(); err != nil {
			fmt.Fprintln(os.Stderr, "fedserver: audit-out:", err)
			failed = true
		}
		auditFile.Close()
	}
	if metricsSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), cfg.Grace())
		if err := metricsSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "fedserver: metrics:", err)
			failed = true
		}
		cancel()
	}
	if failed {
		os.Exit(1)
	}
}
