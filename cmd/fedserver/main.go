// Command fedserver runs the integration server: the FDBS with the
// federated functions of the purchasing scenario registered through the
// chosen architecture, listening for SQL over the client protocol.
//
//	fedserver -addr 127.0.0.1:4711 -arch wfms
//	fedserver -addr 127.0.0.1:4711 -arch udtf -direct
//
// Connect with the fedsql command.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"fedwf/internal/fdbs"
	"fedwf/internal/fedfunc"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4711", "listen address")
	archName := flag.String("arch", "wfms", "integration architecture: wfms or udtf")
	direct := flag.Bool("direct", false, "bypass the controller (ablation configuration)")
	dop := flag.Int("dop", 0, "intra-query degree of parallelism (0 = sequential, -1 = GOMAXPROCS)")
	flag.Parse()

	var arch fedfunc.Arch
	switch strings.ToLower(*archName) {
	case "wfms":
		arch = fedfunc.ArchWfMS
	case "udtf":
		arch = fedfunc.ArchUDTF
	default:
		fmt.Fprintf(os.Stderr, "fedserver: unknown architecture %q (want wfms or udtf)\n", *archName)
		os.Exit(1)
	}

	srv, err := fdbs.NewServer(fdbs.Config{Arch: arch, Direct: *direct})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedserver:", err)
		os.Exit(1)
	}
	if *dop != 0 {
		srv.Engine().SetParallelism(*dop)
		fmt.Printf("fedserver: intra-query parallelism %d\n", srv.Engine().Parallelism())
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedserver:", err)
		os.Exit(1)
	}
	fmt.Printf("fedserver: %s listening on %s (controller: %v)\n", arch, bound, !*direct)
	fmt.Println("fedserver: application systems:", strings.Join(srv.Apps().Systems(), ", "))
	fmt.Println("fedserver: federated functions registered; connect with fedsql -addr", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nfedserver: shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "fedserver:", err)
		os.Exit(1)
	}
}
