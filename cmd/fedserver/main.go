// Command fedserver runs the integration server: the FDBS with the
// federated functions of the purchasing scenario registered through the
// chosen architecture, listening for SQL over the client protocol.
//
//	fedserver -addr 127.0.0.1:4711 -arch wfms
//	fedserver -addr 127.0.0.1:4711 -arch udtf -direct
//	fedserver -metrics-addr 127.0.0.1:9090 -slow-query-ms 100
//	fedserver -stmt-timeout-ms 2000 -retry-attempts 3 -breaker-failures 5
//
// The -stmt-timeout-ms, -retry-*, and -breaker-* flags configure the
// fault-tolerance layer: a per-statement deadline on the virtual clock
// (overridable per session with SET STATEMENT_TIMEOUT), retries with
// exponential backoff against the application systems, and a
// per-application-system circuit breaker. -partial-results lets optional
// lateral branches degrade to NULL padding (flagged in the statement
// metadata) while a system's circuit is open. Retries, breaker trips,
// sheds, and timeouts surface on /metrics and as span attributes on
// /traces.
//
// With -metrics-addr, a second HTTP listener serves /metrics (Prometheus
// text exposition), /healthz, and the trace API: /traces lists the traces
// retained by tail sampling (filter with ?stmt=, ?errors=1, ?min_ms=,
// ?limit=), /traces/<id> serves one trace as JSON or, with ?format=text,
// as a span tree plus waterfall. -pprof additionally mounts the standard
// net/http/pprof handlers under /debug/pprof/ on the same listener. The
// -trace-* flags tune tail sampling. With -slow-query-ms, every statement
// whose simulated latency reaches the threshold is logged to stderr with
// its span-tree summary. SIGINT/SIGTERM trigger a graceful shutdown that
// drains in-flight statements before severing connections.
//
// The same listener serves the audit journal: /audit (newest wide events,
// ?n= bounds the tail), /wf/instances (workflow-instance history), and
// /slo (availability and latency burn rates over sliding virtual-time
// windows; objectives via -slo-availability and -slo-latency-ms). With
// -audit-out, every journal event is additionally mirrored to a JSONL
// file, flushed during the graceful drain so SIGTERM loses no tail
// events. Watch it all live with the fedtop command.
//
// Connect with the fedsql command.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fedwf/internal/appsys"
	"fedwf/internal/fdbs"
	"fedwf/internal/fedfunc"
	"fedwf/internal/obs"
	"fedwf/internal/obs/collector"
	"fedwf/internal/obs/journal"
	"fedwf/internal/resil"
	"fedwf/internal/simlat"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4711", "listen address")
	archName := flag.String("arch", "wfms", "integration architecture: wfms or udtf")
	direct := flag.Bool("direct", false, "bypass the controller (ablation configuration)")
	dop := flag.Int("dop", 0, "intra-query degree of parallelism (0 = sequential, -1 = GOMAXPROCS)")
	batchSize := flag.Int("batch-size", 0, "set-oriented federated calls: chunk lateral invocations into batches of this many rows (0 or 1 = per-row; SET BATCH_SIZE overrides at runtime, engine-global like SET PARALLELISM)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP listen address for /metrics, /healthz and /traces (empty = disabled)")
	slowMS := flag.Float64("slow-query-ms", 0, "log statements at or above this simulated latency in paper ms (0 = disabled)")
	grace := flag.Duration("grace", 5*time.Second, "shutdown grace period for draining in-flight statements")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the metrics listener")
	traceCapacity := flag.Int("trace-capacity", 0, "trace collector ring-buffer slots (0 = default 512)")
	traceSample := flag.Float64("trace-sample", 0, "tail-sampling rate for fast healthy traces (0 = default 0.05, negative = off)")
	traceSlowMS := flag.Float64("trace-slow-ms", 0, "always retain traces at or above this paper latency in ms (0 = default 250)")
	stmtTimeoutMS := flag.Float64("stmt-timeout-ms", 0, "per-statement deadline in paper ms (0 = disabled; SET STATEMENT_TIMEOUT overrides per session)")
	retryAttempts := flag.Int("retry-attempts", 0, "max attempts per application-system call (0 or 1 = no retries)")
	retryBackoffMS := flag.Float64("retry-backoff-ms", 5, "initial retry backoff in paper ms (doubles per retry)")
	retryBudget := flag.Int("retry-budget", 16, "per-statement retry budget across all calls (0 = unlimited)")
	breakerFailures := flag.Int("breaker-failures", 0, "consecutive failures tripping a system's circuit breaker (0 = breaker disabled)")
	breakerOpen := flag.Duration("breaker-open", 30*time.Second, "how long an open breaker rejects calls before probing (wall clock)")
	partialResults := flag.Bool("partial-results", false, "degrade optional lateral branches to NULL padding while a breaker is open")
	faultSeed := flag.Uint64("fault-seed", 0, "enable deterministic fault injection with this seed (chaos testing)")
	faultRate := flag.Float64("fault-rate", 0, "with -fault-seed: transient error probability per application-system call")
	auditOut := flag.String("audit-out", "", "mirror every audit-journal event to this JSONL file (flushed on graceful shutdown)")
	sloAvailability := flag.Float64("slo-availability", 0, "availability objective for SLO burn rates, e.g. 0.995 (0 = default 0.995)")
	sloLatencyMS := flag.Float64("slo-latency-ms", 0, "per-statement latency objective in paper ms for SLO burn rates (0 = default 250)")
	flag.Parse()

	var arch fedfunc.Arch
	switch strings.ToLower(*archName) {
	case "wfms":
		arch = fedfunc.ArchWfMS
	case "udtf":
		arch = fedfunc.ArchUDTF
	default:
		fmt.Fprintf(os.Stderr, "fedserver: unknown architecture %q (want wfms or udtf)\n", *archName)
		os.Exit(1)
	}

	cfg := fdbs.Config{Arch: arch, Direct: *direct, Trace: collector.Policy{
		Capacity:         *traceCapacity,
		SampleRate:       *traceSample,
		LatencyThreshold: time.Duration(*traceSlowMS * float64(simlat.PaperMS)),
	}}
	cfg.StmtTimeout = time.Duration(*stmtTimeoutMS * float64(simlat.PaperMS))
	cfg.PartialResults = *partialResults
	if *retryAttempts > 1 {
		cfg.Retry = resil.DefaultRetryPolicy()
		cfg.Retry.MaxAttempts = *retryAttempts
		cfg.Retry.BaseBackoff = time.Duration(*retryBackoffMS * float64(simlat.PaperMS))
		cfg.Retry.Budget = *retryBudget
	}
	if *breakerFailures > 0 {
		cfg.Breaker = resil.DefaultBreakerPolicy()
		cfg.Breaker.ConsecutiveFailures = *breakerFailures
		cfg.Breaker.OpenFor = *breakerOpen
	}
	if *faultSeed != 0 && *faultRate > 0 {
		inj := resil.NewInjector(*faultSeed)
		for _, sys := range []string{appsys.StockKeeping, appsys.ProductData, appsys.Purchasing} {
			inj.Plan(sys, resil.FaultPlan{ErrorRate: *faultRate})
		}
		cfg.Faults = inj
		fmt.Printf("fedserver: fault injection on (seed %d, error rate %.0f%%)\n", *faultSeed, *faultRate*100)
	}
	srv, err := fdbs.NewServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedserver:", err)
		os.Exit(1)
	}
	if *dop != 0 {
		srv.Engine().SetParallelism(*dop)
		fmt.Printf("fedserver: intra-query parallelism %d\n", srv.Engine().Parallelism())
	}
	if *batchSize > 1 {
		srv.Engine().SetBatchSize(*batchSize)
		fmt.Printf("fedserver: set-oriented federated calls, batch size %d\n", srv.Engine().BatchSize())
	}
	if *slowMS > 0 {
		threshold := time.Duration(*slowMS * float64(simlat.PaperMS))
		srv.SetSlowQueryLog(obs.NewSlowQueryLog(os.Stderr, threshold))
		fmt.Printf("fedserver: slow-query log at %.1f paper ms\n", *slowMS)
	}
	if *sloAvailability > 0 || *sloLatencyMS > 0 {
		obj := journal.DefaultObjectives()
		if *sloAvailability > 0 {
			obj.Availability = *sloAvailability
		}
		if *sloLatencyMS > 0 {
			obj.Latency = time.Duration(*sloLatencyMS * float64(simlat.PaperMS))
		}
		srv.Journal().SetObjectives(obj)
		fmt.Printf("fedserver: SLOs: availability %.4f, latency %.0f paper ms\n",
			obj.Availability, float64(obj.Latency)/float64(simlat.PaperMS))
	}
	var auditFile *os.File
	if *auditOut != "" {
		f, err := os.Create(*auditOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedserver:", err)
			os.Exit(1)
		}
		auditFile = f
		srv.Journal().SetSink(f)
		fmt.Printf("fedserver: audit journal mirrored to %s\n", *auditOut)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedserver:", err)
		os.Exit(1)
	}

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		mux := obs.MetricsMux(srv.MetricsRegistry())
		srv.Collector().Register(mux)
		srv.Stats().Register(mux)
		srv.Journal().Register(mux)
		if *enablePprof {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			fmt.Printf("fedserver: pprof on http://%s/debug/pprof/\n", *metricsAddr)
		}
		metricsSrv = &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "fedserver: metrics:", err)
			}
		}()
		fmt.Printf("fedserver: metrics on http://%s/metrics, traces on http://%s/traces, stats on http://%s/stats/statements\n", *metricsAddr, *metricsAddr, *metricsAddr)
	}

	if cfg.Retry.Enabled() || cfg.Breaker.Enabled() || cfg.StmtTimeout > 0 {
		fmt.Printf("fedserver: fault tolerance: retries=%d, breaker-failures=%d, stmt-timeout=%.0fms, partial-results=%v\n",
			cfg.Retry.MaxAttempts, cfg.Breaker.ConsecutiveFailures, *stmtTimeoutMS, *partialResults)
	}
	fmt.Printf("fedserver: %s listening on %s (controller: %v)\n", arch, bound, !*direct)
	fmt.Println("fedserver: application systems:", strings.Join(srv.Apps().Systems(), ", "))
	fmt.Println("fedserver: federated functions registered; connect with fedsql -addr", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nfedserver: shutting down (draining in-flight statements)")
	failed := false
	if err := srv.Shutdown(*grace); err != nil {
		fmt.Fprintln(os.Stderr, "fedserver:", err)
		failed = true
	}
	if auditFile != nil {
		// The drain hook flushed the journal's buffer; sync and close the
		// file itself.
		if err := auditFile.Sync(); err != nil {
			fmt.Fprintln(os.Stderr, "fedserver: audit-out:", err)
			failed = true
		}
		auditFile.Close()
	}
	if metricsSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		if err := metricsSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "fedserver: metrics:", err)
			failed = true
		}
		cancel()
	}
	if failed {
		os.Exit(1)
	}
}
