package fedwf_test

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildBinaries compiles the repository's commands once per test run.
func buildBinaries(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	out := make(map[string]string, len(names))
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		out[name] = bin
	}
	return out
}

// freePort reserves an ephemeral TCP port.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestEndToEndServerAndClient boots fedserver, runs statements through
// fedsql, and checks the results — the full wire path of the paper's
// integration server.
func TestEndToEndServerAndClient(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildBinaries(t, "fedserver", "fedsql")
	addr := freePort(t)

	server := exec.Command(bins["fedserver"], "-addr", addr, "-arch", "wfms")
	server.Stdout = os.Stderr
	server.Stderr = os.Stderr
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Signal(os.Interrupt)
		server.Wait()
	}()

	// Wait for the listener.
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fedserver did not start listening")
		}
		time.Sleep(50 * time.Millisecond)
	}

	run := func(sql string) string {
		cmd := exec.Command(bins["fedsql"], "-addr", addr, "-c", sql)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("fedsql %q: %v\n%s", sql, err, out)
		}
		return string(out)
	}

	out := run("SELECT R.Decision FROM TABLE (BuySuppComp(4, 'washer')) AS R")
	if !strings.Contains(out, "Decision") || !(strings.Contains(out, "YES") || strings.Contains(out, "NO")) {
		t.Errorf("federated call output:\n%s", out)
	}
	run("CREATE TABLE t (a INT)")
	run("INSERT INTO t VALUES (1), (2), (3)")
	out = run("SELECT COUNT(*) AS n FROM t")
	if !strings.Contains(out, "3") {
		t.Errorf("count output:\n%s", out)
	}
	// Errors surface with a non-zero exit.
	cmd := exec.Command(bins["fedsql"], "-addr", addr, "-c", "SELECT * FROM nowhere")
	if err := cmd.Run(); err == nil {
		t.Error("fedsql should fail on a bad statement")
	}
}

// TestEndToEndTools smoke-tests wfrun and paperbench.
func TestEndToEndTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildBinaries(t, "wfrun", "paperbench")

	out, err := exec.Command(bins["wfrun"], "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("wfrun -list: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "BuySuppComp") {
		t.Errorf("wfrun -list output:\n%s", out)
	}
	out, err = exec.Command(bins["wfrun"], "-process", "BuySuppComp", "-args", "4,washer", "-audit").CombinedOutput()
	if err != nil {
		t.Fatalf("wfrun: %v\n%s", err, out)
	}
	for _, want := range []string{"5 activities", "Decision", "audit trail", "completed"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("wfrun output missing %q:\n%s", want, out)
		}
	}
	if msg, err := exec.Command(bins["wfrun"], "-process", "NoSuch").CombinedOutput(); err == nil {
		t.Errorf("wfrun should fail for unknown process:\n%s", msg)
	}

	out, err = exec.Command(bins["paperbench"], "-exp", "fig6").CombinedOutput()
	if err != nil {
		t.Fatalf("paperbench: %v\n%s", err, out)
	}
	for _, want := range []string{"WfMS approach", "Process activities", "51%", "enhanced SQL UDTF approach"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("paperbench output missing %q:\n%s", want, out)
		}
	}
	if msg, err := exec.Command(bins["paperbench"], "-exp", "nosuch").CombinedOutput(); err == nil {
		t.Errorf("paperbench should fail for unknown experiment:\n%s", msg)
	}
}
