module fedwf

go 1.24
