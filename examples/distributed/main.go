// Distributed runs the integration server against application systems
// living in a separate process boundary: the three systems are served
// over TCP (the stand-in for the paper's RMI deployment) and the FDBS
// stack reaches them through a dialled RPC client. Function metadata
// (signatures) comes from the locally constructed scenario catalog, as a
// real installation would import interface definitions.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fedwf/internal/appsys"
	"fedwf/internal/fedfunc"
	"fedwf/internal/rpc"
	"fedwf/internal/simlat"
	"fedwf/internal/types"
)

func main() {
	// "Remote" side: the application systems behind a TCP endpoint.
	remoteApps, err := appsys.BuildScenario()
	if err != nil {
		log.Fatal(err)
	}
	server := rpc.NewServer(remoteApps.Handler())
	// Serve batches natively: one wire request carries a whole chunk of
	// parameter rows when the FDBS runs with SET BATCH_SIZE. Clients of
	// servers that predate this call keep working row by row.
	server.SetBatchHandler(remoteApps.BatchHandler())
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	fmt.Println("application systems listening on", addr)

	// "Local" side: the integration server reaches them through a bounded
	// pool of framed multiplexed connections — parallel lateral workers
	// pipeline their calls over a few shared sockets instead of dialing
	// per call. DialMux negotiates the framed protocol and falls back to
	// the serialized gob transport against servers that predate it.
	client := rpc.NewPool(4, func() (rpc.Client, error) {
		return rpc.DialMux(addr.String())
	})
	defer client.Close()

	// The local scenario catalog supplies the function signatures; every
	// actual call crosses the wire.
	localCatalog, err := appsys.BuildScenario()
	if err != nil {
		log.Fatal(err)
	}
	stack, err := fedfunc.NewStack(fedfunc.ArchWfMS, fedfunc.Options{
		Apps:       localCatalog,
		AppsClient: client,
	})
	if err != nil {
		log.Fatal(err)
	}

	session := stack.Engine().NewSession()
	session.MustExecContext(context.Background(), "CREATE TABLE candidates (SupplierNo INT, CompName VARCHAR(30))")
	session.MustExecContext(context.Background(), "INSERT INTO candidates VALUES (1, 'bolt'), (4, 'washer'), (7, 'pin')")

	fmt.Println("\nDecisions computed through workflows whose activities call over TCP:")
	start := time.Now()
	tab, err := session.QueryContext(context.Background(), `
		SELECT c.SupplierNo, c.CompName, D.Decision
		FROM candidates c, TABLE (BuySuppComp(c.SupplierNo, c.CompName)) AS D
		ORDER BY c.SupplierNo`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab.String())
	fmt.Printf("(3 federated functions, 15 remote local-function calls, %v wall time)\n", time.Since(start).Round(time.Millisecond))

	// A single direct remote call for comparison.
	res, err := client.Call(context.Background(), simlat.Free(), rpc.Request{
		System: appsys.Purchasing, Function: "GetReliability",
		Args: []types.Value{types.NewInt(4)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndirect remote GetReliability(4) -> %s\n", res.Rows[0])
}
