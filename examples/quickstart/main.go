// Quickstart: build an integration server, combine a federated function
// (application-system data reachable only through functions) with an
// ordinary SQL table in one statement, and look at the query plan.
package main

import (
	"context"
	"fmt"
	"log"

	"fedwf/internal/fdbs"
	"fedwf/internal/fedfunc"
)

func main() {
	// An integration server wires the FDBS, the workflow engine, the
	// controller, and the three application systems of the purchasing
	// scenario (stock-keeping, product data management, purchasing).
	srv, err := fdbs.NewServer(fdbs.Config{Arch: fedfunc.ArchWfMS})
	if err != nil {
		log.Fatal(err)
	}
	session := srv.Session()

	// Plain SQL against the FDBS works as in any database.
	session.MustExecContext(context.Background(), "CREATE TABLE watchlist (SupplierNo INT, Note VARCHAR(30))")
	session.MustExecContext(context.Background(), "INSERT INTO watchlist VALUES (3, 'strategic'), (7, 'on probation'), (999, 'unknown')")

	// Federated functions appear as table functions: TABLE (Fn(args)) in
	// the FROM clause. GetSuppQualRelia is realised by a workflow process
	// that calls GetQuality and GetReliability in parallel activities.
	fmt.Println("Quality and reliability of the watched suppliers:")
	tab, err := session.QueryContext(context.Background(), `
		SELECT w.SupplierNo, w.Note, QR.Qual, QR.Relia
		FROM watchlist w, TABLE (GetSuppQualRelia(w.SupplierNo)) AS QR
		ORDER BY w.SupplierNo`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab.String())
	fmt.Println("(supplier 999 is unknown to the application systems, so the lateral call returns no rows)")

	// The planner shows how the statement decomposes.
	fmt.Println("\nQuery plan:")
	res, err := session.ExecContext(context.Background(), `EXPLAIN SELECT w.Note, QR.Qual
		FROM watchlist w, TABLE (GetSuppQualRelia(w.SupplierNo)) AS QR`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Table.Rows {
		fmt.Println("  " + row[0].Str())
	}

	// The general case of the paper's Fig. 1: one federated function
	// replacing five manual application-system interactions.
	fmt.Println("\nBuySuppComp(4, 'washer'):")
	tab, err = session.QueryContext(context.Background(), "SELECT R.Decision FROM TABLE (BuySuppComp(4, 'washer')) AS R")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab.String())
}
