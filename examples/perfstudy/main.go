// Perfstudy reproduces the paper's Sect. 4 performance study end to end
// with commentary: the Fig. 5 comparison, the Fig. 6 breakdowns, the boot
// states, the parallel-vs-sequential contrast, the loop scaling, and the
// controller ablation — all on the deterministic virtual clock.
package main

import (
	"context"
	"fmt"
	"log"

	"fedwf/internal/benchharn"
)

func main() {
	h, err := benchharn.New()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The integration server couples an FDBS with a WfMS; the question of")
	fmt.Println("Sect. 4 is how much the big workflow engine costs compared with the")
	fmt.Println("leaner enhanced SQL UDTF architecture.")

	fmt.Println("\n--- Fig. 5: elapsed times over the mapping catalog (hot calls) ---")
	fig5, err := h.Fig5(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(benchharn.RenderFig5(fig5))
	fmt.Println("The WfMS approach pays a fresh program start per activity, so its")
	fmt.Println("times rise more steeply with the number of local functions; for the")
	fmt.Println("three-function GetNoSuppComp it is about three times slower.")

	fmt.Println("\n--- Fig. 6: where the time goes (GetNoSuppComp) ---")
	wf, ud, err := h.Fig6(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(benchharn.RenderBreakdown(wf))
	fmt.Println(benchharn.RenderBreakdown(ud))
	fmt.Println("Under the WfMS, processing the activities dominates (per-activity")
	fmt.Println("program start); under the UDTF architecture the A-UDTF prepare/finish")
	fmt.Println("overheads and the RMI hops to the controller dominate.")

	fmt.Println("\n--- Boot states: initial vs after-other-function vs repeated ---")
	boot, err := h.BootStates(context.Background(), "GetSuppQual")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(benchharn.RenderBootStates(boot))

	fmt.Println("\n--- Parallel activities pay off only under the WfMS ---")
	par, err := h.ParallelVsSequential(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(benchharn.RenderParallel(par))
	fmt.Println("The workflow navigator runs independent activities concurrently; the")
	fmt.Println("FDBS executes independent A-UDTFs one after the other and pays for")
	fmt.Println("composing their result sets.")

	fmt.Println("\n--- Do-until loop: time rises linearly with the call count ---")
	loop, err := h.LoopScaling(context.Background(), []int{1, 2, 4, 8, 16, 24})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(benchharn.RenderLoop(loop))

	fmt.Println("\n--- Controller ablation ---")
	abl, with, without, err := h.ControllerAblation(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(benchharn.RenderAblation(abl, with, without))
	fmt.Println("The controller (forced by DB2's fenced-UDTF security model) costs the")
	fmt.Println("UDTF architecture three RMI round trips per call but the WfMS")
	fmt.Println("architecture only one, so removing it widens the gap between them.")
}
