// Purchasing walks through the paper's motivating scenario (Sect. 1): an
// employee must decide whether to order a component from a known
// supplier. First the five manual application-system interactions of
// Fig. 1 are replayed one by one; then the same decision is obtained from
// the single federated function BuySuppComp under both integration
// architectures, which must agree.
package main

import (
	"context"
	"fmt"
	"log"

	"fedwf/internal/appsys"
	"fedwf/internal/fedfunc"
	"fedwf/internal/simlat"
	"fedwf/internal/types"
)

func main() {
	supplierNo := types.NewInt(4)
	compName := types.NewString("washer")

	apps, err := appsys.BuildScenario()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== The manual process (what the employee does today) ==")
	call := func(system, fn string, args ...types.Value) types.Value {
		tab, err := apps.CallContext(context.Background(), simlat.Free(), system, fn, args)
		if err != nil {
			log.Fatal(err)
		}
		if tab.Len() == 0 {
			log.Fatalf("%s.%s returned no rows", system, fn)
		}
		fmt.Printf("  %-16s %-22s -> %s\n", system, fn, tab.Rows[0])
		return tab.Rows[0][0]
	}
	qual := call(appsys.StockKeeping, "GetQuality", supplierNo)
	relia := call(appsys.Purchasing, "GetReliability", supplierNo)
	grade := call(appsys.Purchasing, "GetGrade", qual, relia)
	compNo := call(appsys.ProductData, "GetCompNo", compName)
	answer := call(appsys.Purchasing, "DecidePurchase", grade, compNo)
	fmt.Printf("  => manual decision: %s\n", answer.Format())

	fmt.Println("\n== The federated function (one call instead of five) ==")
	for _, arch := range []fedfunc.Arch{fedfunc.ArchWfMS, fedfunc.ArchUDTF} {
		stack, err := fedfunc.NewStack(arch, fedfunc.Options{Apps: apps})
		if err != nil {
			log.Fatal(err)
		}
		// Warm call, then a measured repeat.
		if _, err := stack.CallContext(context.Background(), simlat.Free(), "BuySuppComp", []types.Value{supplierNo, compName}); err != nil {
			log.Fatal(err)
		}
		task := simlat.NewVirtualTask()
		tab, err := stack.CallContext(context.Background(), task, "BuySuppComp", []types.Value{supplierNo, compName})
		if err != nil {
			log.Fatal(err)
		}
		decision := tab.Rows[0][0].Format()
		fmt.Printf("  %-28s -> %-4s (simulated elapsed: %v)\n", arch, decision, task.Elapsed())
		if decision != answer.Format() {
			log.Fatalf("architecture %s disagrees with the manual process", arch)
		}
	}

	fmt.Println("\n== The same federated function inside a bigger query ==")
	stack, err := fedfunc.NewStack(fedfunc.ArchWfMS, fedfunc.Options{Apps: apps})
	if err != nil {
		log.Fatal(err)
	}
	session := stack.Engine().NewSession()
	session.MustExecContext(context.Background(), "CREATE TABLE pending_orders (SupplierNo INT, CompName VARCHAR(30), Qty INT)")
	session.MustExecContext(context.Background(), `INSERT INTO pending_orders VALUES
		(4, 'washer', 500), (2, 'bolt', 120), (6, 'nut', 60)`)
	tab, err := session.QueryContext(context.Background(), `
		SELECT o.SupplierNo, o.CompName, o.Qty, D.Decision
		FROM pending_orders o, TABLE (BuySuppComp(o.SupplierNo, o.CompName)) AS D
		ORDER BY o.SupplierNo`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab.String())
}
