// Complexity demonstrates every heterogeneity case of the paper's Sect. 3
// on both integration architectures: each federated function of the
// mapping catalog is executed on the WfMS stack and on the enhanced SQL
// UDTF stack, the results are compared, and the support matrix is
// printed. The cyclic case shows the capability gap: SQL has no loop
// construct, but the workflow's do-until block and the Go I-UDTF variant
// both handle it.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"fedwf/internal/appsys"
	"fedwf/internal/benchharn"
	"fedwf/internal/fedfunc"
	"fedwf/internal/simlat"
	"fedwf/internal/types"
)

func main() {
	apps, err := appsys.BuildScenario()
	if err != nil {
		log.Fatal(err)
	}
	wf, err := fedfunc.NewStack(fedfunc.ArchWfMS, fedfunc.Options{Apps: apps})
	if err != nil {
		log.Fatal(err)
	}
	ud, err := fedfunc.NewStack(fedfunc.ArchUDTF, fedfunc.Options{Apps: apps})
	if err != nil {
		log.Fatal(err)
	}

	for _, spec := range fedfunc.Specs() {
		fmt.Printf("== %s — %s ==\n", spec.Name, spec.Case)
		fmt.Printf("   local functions: %v\n", spec.LocalFunctions)
		args := spec.SampleArgs[0]
		fmt.Printf("   sample call:     %s(%s)\n", spec.Name, formatArgs(args))

		wfRes, err := wf.CallContext(context.Background(), simlat.Free(), spec.Name, args)
		if err != nil {
			log.Fatalf("WfMS stack: %v", err)
		}
		fmt.Printf("   WfMS result:     %s\n", rowsOf(wfRes))

		if spec.SupportsUDTF() {
			udRes, err := ud.CallContext(context.Background(), simlat.Free(), spec.Name, args)
			if err != nil {
				log.Fatalf("UDTF stack: %v", err)
			}
			fmt.Printf("   UDTF result:     %s\n", rowsOf(udRes))
			if rowsOf(wfRes) != rowsOf(udRes) {
				log.Fatalf("architectures disagree for %s", spec.Name)
			}
		} else {
			fmt.Printf("   UDTF result:     not supported (%s)\n", spec.UDTFMechanism)
		}
		if spec.GoBody != nil {
			goRes, err := ud.CallContext(context.Background(), simlat.Free(), spec.Name+"_Go", args)
			if err != nil {
				log.Fatalf("Go I-UDTF: %v", err)
			}
			fmt.Printf("   Go I-UDTF:       %s\n", rowsOf(goRes))
		}
		fmt.Println()
	}

	fmt.Println("== Support matrix (the paper's Sect. 3 table) ==")
	h, err := benchharn.New()
	if err != nil {
		log.Fatal(err)
	}
	rows, err := h.Capabilities(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(benchharn.RenderCapabilities(rows))
}

func formatArgs(args []types.Value) string {
	out := ""
	for i, a := range args {
		if i > 0 {
			out += ", "
		}
		out += a.String()
	}
	return out
}

// rowsOf canonicalises a result for order-insensitive display/compare.
func rowsOf(t *types.Table) string {
	if t.Len() == 0 {
		return "(no rows)"
	}
	rows := make([]string, t.Len())
	for i, r := range t.Rows {
		rows[i] = r.String()
	}
	sort.Strings(rows)
	out := rows[0]
	for _, r := range rows[1:] {
		out += " " + r
	}
	if len(out) > 90 {
		out = out[:87] + "..."
	}
	return out
}
